package rdf

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
)

// This file implements the parallel ingest path: the input document is split
// into byte-range chunks aligned on line boundaries, each chunk is parsed and
// dictionary-encoded by its own goroutine against a private per-shard term
// table, and the shards are then merged deterministically into one global
// Dictionary. The merge walks the shards in document order and interns each
// shard's terms in their first-occurrence order, so every term receives
// exactly the ID the sequential reader would have assigned — parallel and
// sequential ingest are byte-for-byte interchangeable (the determinism suite
// pins this for shard counts 1, 2, 4, and 8).
//
// The shard scanner works directly on the input bytes: lines and terms are
// slices of the input buffer, and a string is materialized only when a term
// is new to the shard's table (a map lookup keyed by string(b) does not
// allocate in Go). That makes the kernel allocation-lean compared to the
// sequential bufio.Scanner path, which materializes every line: the parallel
// path wins even at one shard on one core, and scales with shard count on
// multi-core machines.

// shardDict is a per-shard term table: terms in first-occurrence order plus
// the reverse index. IDs are shard-local and remapped during the merge.
type shardDict struct {
	byStr map[string]uint32
	order []string
}

// newShardDict pre-sizes the term table for a chunk of about lines triples: a
// line holds three terms but most repeat (predicates, shared subjects), so
// one slot per line is a decent speculative size that avoids most of the
// incremental map growth without tripling the footprint.
func newShardDict(lines int) *shardDict {
	if lines < 16 {
		lines = 16
	}
	return &shardDict{
		byStr: make(map[string]uint32, lines),
		order: make([]string, 0, lines),
	}
}

// encode interns a term given as a byte slice, allocating a string only on
// first sight.
func (d *shardDict) encode(b []byte) uint32 {
	if id, ok := d.byStr[string(b)]; ok {
		return id
	}
	s := string(b)
	id := uint32(len(d.order))
	d.byStr[s] = id
	d.order = append(d.order, s)
	return id
}

// BlockTriple is a triple encoded against a block-local (or shard-local)
// term table: S, P, and O index the table's first-occurrence term order. It
// is the unit the streaming ingest layer (stream.go) ships between the
// scanner, the dictionary merge, and — in distributed ingest — the wire.
type BlockTriple struct {
	S, P, O uint32
}

// shardResult is the outcome of scanning one chunk.
type shardResult struct {
	dict    *shardDict
	triples []BlockTriple
	errs    []*SyntaxError // malformed lines, in chunk order
}

// ParseNTriples parses an N-Triples document held in memory using the given
// number of parallel shards (values below 1 select 1). The resulting dataset
// — triple order and dictionary ID assignment included — is identical to
// ReadNTriples over the same bytes; a malformed line aborts with the
// document's first *SyntaxError, like the sequential strict reader.
func ParseNTriples(data []byte, shards int) (*Dataset, error) {
	ds, _, err := parseNTriplesParallel(data, shards, 0, false)
	return ds, err
}

// ParseNTriplesLenient is ParseNTriples in lenient mode: malformed lines are
// skipped and reported as *SyntaxErrors (capped at maxErrors, non-positive
// selecting DefaultMaxParseErrors), mirroring ReadNTriplesLenient.
func ParseNTriplesLenient(data []byte, shards, maxErrors int) (*Dataset, []*SyntaxError, error) {
	if maxErrors <= 0 {
		maxErrors = DefaultMaxParseErrors
	}
	return parseNTriplesParallel(data, shards, maxErrors, true)
}

// ReadNTriplesParallel reads the whole stream into memory and parses it with
// ParseNTriples. For inputs already held as bytes, call ParseNTriples
// directly and avoid the copy.
func ReadNTriplesParallel(r io.Reader, shards int) (*Dataset, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ntriples: %w", err)
	}
	return ParseNTriples(data, shards)
}

// ReadNTriplesParallelLenient is ReadNTriplesParallel in lenient mode.
func ReadNTriplesParallelLenient(r io.Reader, shards, maxErrors int) (*Dataset, []*SyntaxError, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("ntriples: %w", err)
	}
	return ParseNTriplesLenient(data, shards, maxErrors)
}

// parseNTriplesParallel is the shared strict/lenient driver: chunk, scan the
// chunks concurrently, then merge deterministically.
func parseNTriplesParallel(data []byte, shards, maxErrors int, lenient bool) (*Dataset, []*SyntaxError, error) {
	if shards < 1 {
		shards = 1
	}
	chunks := splitChunks(data, shards)

	// Scan every chunk concurrently. Each worker needs its chunk's starting
	// line number up front for error reporting; complete lines end in '\n',
	// and chunk boundaries sit just after one, so a newline count per
	// preceding chunk is exact.
	results := make([]shardResult, len(chunks))
	startLine := 1
	var wg sync.WaitGroup
	for i, chunk := range chunks {
		lines := bytes.Count(chunk, []byte{'\n'})
		wg.Add(1)
		go func(i int, chunk []byte, startLine, lines int) {
			defer wg.Done()
			results[i] = scanShard(chunk, startLine, lines)
		}(i, chunk, startLine, lines)
		startLine += lines
	}
	wg.Wait()

	// Error reconciliation mirrors the sequential readers exactly.
	var malformed []*SyntaxError
	for _, res := range results {
		malformed = append(malformed, res.errs...)
	}
	sort.Slice(malformed, func(i, j int) bool { return malformed[i].Line < malformed[j].Line })
	if !lenient {
		if len(malformed) > 0 {
			return nil, nil, malformed[0]
		}
	} else if len(malformed) > maxErrors {
		over := malformed[maxErrors]
		return nil, malformed[:maxErrors], fmt.Errorf(
			"ntriples: more than %d malformed lines, giving up (line %d: %v)",
			maxErrors, over.Line, over.Err)
	}

	return mergeShards(results), malformed, nil
}

// splitChunks cuts data into n byte ranges aligned just after '\n', so no
// line straddles two chunks. Chunks may be empty when lines are long or the
// input is small; the concatenation of all chunks is always the whole input.
func splitChunks(data []byte, n int) [][]byte {
	chunks := make([][]byte, 0, n)
	start := 0
	for i := 1; i < n; i++ {
		target := len(data) * i / n
		if target < start {
			target = start
		}
		end := target
		if nl := bytes.IndexByte(data[target:], '\n'); nl >= 0 {
			end = target + nl + 1
		} else {
			end = len(data)
		}
		chunks = append(chunks, data[start:end])
		start = end
	}
	return append(chunks, data[start:])
}

// scanShard parses one chunk of about the given number of lines into
// shard-local triples. It is the parallel counterpart of the sequential
// scanning loop in readNTriples: the same trimming, the same skip rules, the
// same per-line grammar.
func scanShard(chunk []byte, startLine, lines int) shardResult {
	res := shardResult{dict: newShardDict(lines)}
	if lines > 0 {
		res.triples = make([]BlockTriple, 0, lines+1)
	}
	// N-Triples documents run on their subject (all statements about one
	// entity in a row) and draw predicates from a small vocabulary, so a
	// last-seen memo per position short-circuits the term-table lookup with a
	// byte comparison for the common consecutive-repeat case.
	var lastS, lastP []byte
	var lastSID, lastPID uint32
	lineNo := startLine - 1
	for len(chunk) > 0 {
		var line []byte
		if nl := bytes.IndexByte(chunk, '\n'); nl >= 0 {
			line, chunk = chunk[:nl], chunk[nl+1:]
		} else {
			line, chunk = chunk, nil
		}
		lineNo++
		// Trim fast path: when both boundary bytes are ASCII non-space there
		// is nothing to trim (multi-byte Unicode whitespace never starts or
		// ends with such a byte), and TrimSpace's call cost is measurable at
		// one call per line.
		if n := len(line); n == 0 || line[0] <= ' ' || line[0] >= 0x80 || line[n-1] <= ' ' || line[n-1] >= 0x80 {
			line = bytes.TrimSpace(line)
		}
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		s, p, o, err := parseLineBytes(line)
		if err != nil {
			res.errs = append(res.errs, &SyntaxError{Line: lineNo, Err: err})
			continue
		}
		if !bytes.Equal(s, lastS) {
			lastS, lastSID = s, res.dict.encode(s)
		}
		if !bytes.Equal(p, lastP) {
			lastP, lastPID = p, res.dict.encode(p)
		}
		res.triples = append(res.triples, BlockTriple{
			S: lastSID,
			P: lastPID,
			O: res.dict.encode(o),
		})
	}
	return res
}

// mergeShards builds the global dataset: shards are visited in document
// order, each shard's terms are interned in their first-occurrence order
// (already-known terms keep their earlier ID), and the shard's triples are
// remapped through the resulting local→global table. Because sequential
// ingest also assigns IDs in document first-occurrence order, the merged
// dictionary is identical to the sequential one.
func mergeShards(results []shardResult) *Dataset {
	terms, triples := 0, 0
	for _, res := range results {
		terms += len(res.dict.order)
		triples += len(res.triples)
	}
	ds := &Dataset{
		Dict:    NewDictionarySized(terms),
		Triples: make([]Triple, 0, triples),
	}
	var remap []Value
	for _, res := range results {
		remap = remap[:0]
		for _, term := range res.dict.order {
			remap = append(remap, ds.Dict.Encode(term))
		}
		for _, lt := range res.triples {
			ds.Triples = append(ds.Triples, Triple{
				S: remap[lt.S],
				P: remap[lt.P],
				O: remap[lt.O],
			})
		}
	}
	return ds
}

// parseLineBytes is parseNTriplesLine over a byte slice, so shard scanning
// can slice the input buffer instead of materializing line strings.
func parseLineBytes(line []byte) (s, p, o []byte, err error) {
	rest := line
	if s, rest, err = scanTermBytes(rest); err != nil {
		return nil, nil, nil, fmt.Errorf("subject: %w", err)
	}
	if p, rest, err = scanTermBytes(rest); err != nil {
		return nil, nil, nil, fmt.Errorf("predicate: %w", err)
	}
	if o, rest, err = scanTermBytes(rest); err != nil {
		return nil, nil, nil, fmt.Errorf("object: %w", err)
	}
	rest = bytes.TrimSpace(rest)
	if len(rest) != 1 || rest[0] != '.' {
		return nil, nil, nil, fmt.Errorf("expected terminating '.', got %q", rest)
	}
	return s, p, o, nil
}

// scanTermBytes is scanTerm over a byte slice; the two must accept exactly
// the same grammar (the ingest equivalence test cross-checks them).
func scanTermBytes(in []byte) (term, rest []byte, err error) {
	for len(in) > 0 && (in[0] == ' ' || in[0] == '\t') {
		in = in[1:]
	}
	if len(in) == 0 {
		return nil, nil, fmt.Errorf("unexpected end of line")
	}
	switch in[0] {
	case '<':
		end := bytes.IndexByte(in, '>')
		if end < 0 {
			return nil, nil, fmt.Errorf("unterminated URI")
		}
		return in[:end+1], in[end+1:], nil
	case '_':
		end := indexSpaceTab(in)
		if end < 0 {
			end = len(in)
		}
		return in[:end], in[end:], nil
	case '"':
		end := closingQuoteBytes(in)
		if end < 0 {
			return nil, nil, fmt.Errorf("unterminated literal")
		}
		// Absorb an optional datatype (^^<...>) or language tag (@xx).
		rest = in[end+1:]
		if bytes.HasPrefix(rest, []byte("^^<")) {
			gt := bytes.IndexByte(rest, '>')
			if gt < 0 {
				return nil, nil, fmt.Errorf("unterminated datatype URI")
			}
			end += gt + 1
			rest = rest[gt+1:]
		} else if len(rest) > 0 && rest[0] == '@' {
			n := 1
			for n < len(rest) && rest[n] != ' ' && rest[n] != '\t' {
				n++
			}
			end += n
			rest = rest[n:]
		}
		return in[:end+1], rest, nil
	default:
		return nil, nil, fmt.Errorf("unexpected character %q", in[0])
	}
}

// indexSpaceTab finds the first space or tab, the byte-slice counterpart of
// strings.IndexAny(in, " \t").
func indexSpaceTab(in []byte) int {
	for i := 0; i < len(in); i++ {
		if in[i] == ' ' || in[i] == '\t' {
			return i
		}
	}
	return -1
}

// closingQuoteBytes finds the index of the unescaped closing quote of a
// literal that starts at in[0] == '"'.
func closingQuoteBytes(in []byte) int {
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '\\':
			i++ // skip the escaped character
		case '"':
			return i
		}
	}
	return -1
}
