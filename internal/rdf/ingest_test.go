package rdf_test

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

// equalDatasets asserts two datasets agree triple-for-triple and ID-for-ID:
// same dictionary length, same ID for every term, same encoded triples.
func equalDatasets(t *testing.T, label string, got, want *rdf.Dataset) {
	t.Helper()
	if got.Dict.Len() != want.Dict.Len() {
		t.Fatalf("%s: dictionary has %d terms, want %d", label, got.Dict.Len(), want.Dict.Len())
	}
	for id := 0; id < want.Dict.Len(); id++ {
		term := want.Dict.Decode(rdf.Value(id))
		gotID, ok := got.Dict.Lookup(term)
		if !ok || gotID != rdf.Value(id) {
			t.Fatalf("%s: term %q has ID %d (present=%v), want %d", label, term, gotID, ok, id)
		}
	}
	if len(got.Triples) != len(want.Triples) {
		t.Fatalf("%s: %d triples, want %d", label, len(got.Triples), len(want.Triples))
	}
	for i := range want.Triples {
		if got.Triples[i] != want.Triples[i] {
			t.Fatalf("%s: triple %d = %+v, want %+v", label, i, got.Triples[i], want.Triples[i])
		}
	}
}

// TestParallelIngestDeterministicMuseums pins the sharded-dictionary merge
// protocol on a real fixture: every shard count assigns exactly the IDs the
// sequential reader does.
func TestParallelIngestDeterministicMuseums(t *testing.T) {
	data, err := os.ReadFile("../../cmd/rdfind/testdata/museums.nt")
	if err != nil {
		t.Fatal(err)
	}
	want, err := rdf.ReadNTriples(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4, 8} {
		got, err := rdf.ParseNTriples(data, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		equalDatasets(t, fmt.Sprintf("museums shards=%d", shards), got, want)
	}
}

// TestParallelIngestDeterministicRandom round-trips seeded random datasets
// through the N-Triples writer and back through every shard count.
func TestParallelIngestDeterministicRandom(t *testing.T) {
	for _, seed := range []int64{1, 7, 4242} {
		var buf bytes.Buffer
		if err := rdf.WriteNTriples(&buf, datagen.Random(seed)); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()
		want, err := rdf.ReadNTriples(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("seed=%d: sequential: %v", seed, err)
		}
		for _, shards := range []int{1, 2, 4, 8} {
			got, err := rdf.ParseNTriples(data, shards)
			if err != nil {
				t.Fatalf("seed=%d shards=%d: %v", seed, shards, err)
			}
			equalDatasets(t, fmt.Sprintf("seed=%d shards=%d", seed, shards), got, want)
		}
	}
}

// TestParallelIngestOddInputs covers chunking edge cases: inputs smaller than
// the shard count, blank and comment lines, no trailing newline, CRLF.
func TestParallelIngestOddInputs(t *testing.T) {
	inputs := []string{
		"",
		"\n\n\n",
		"# only a comment\n",
		"<a> <b> <c> .",                           // no trailing newline
		"<a> <b> <c> .\r\n<a> <b> \"x\"@en .\r\n", // CRLF
		"<a> <b> \"v\\\"q\"^^<t> .\n_:b1 <p> _:b2 .\n",
		strings.Repeat("<s> <p> <o> .\n", 3),
	}
	for _, in := range inputs {
		want, err := rdf.ReadNTriples(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: sequential: %v", in, err)
		}
		for _, shards := range []int{1, 2, 4, 8, 64} {
			got, err := rdf.ParseNTriples([]byte(in), shards)
			if err != nil {
				t.Fatalf("%q shards=%d: %v", in, shards, err)
			}
			equalDatasets(t, fmt.Sprintf("%q shards=%d", in, shards), got, want)
		}
	}
}

// TestParallelIngestStrictErrors: strict mode reports the document's first
// malformed line, like the sequential reader, regardless of which shard
// found it.
func TestParallelIngestStrictErrors(t *testing.T) {
	in := []byte("<a> <b> <c> .\nbroken line\n<d> <e> <f> .\nalso broken\n")
	for _, shards := range []int{1, 2, 4, 8} {
		ds, err := rdf.ParseNTriples(in, shards)
		if ds != nil || err == nil {
			t.Fatalf("shards=%d: strict parse of broken input = (%v, %v)", shards, ds, err)
		}
		serr, ok := err.(*rdf.SyntaxError)
		if !ok {
			t.Fatalf("shards=%d: error type %T, want *SyntaxError", shards, err)
		}
		if serr.Line != 2 {
			t.Errorf("shards=%d: first error at line %d, want 2", shards, serr.Line)
		}
	}
}

// TestParallelIngestLenientMatchesSequential: skipped lines, their order, and
// the over-cap give-up behavior all match the sequential lenient reader.
func TestParallelIngestLenientMatchesSequential(t *testing.T) {
	in := []byte("<a> <b> <c> .\nbad 1\n<d> <e> <f> .\nbad 2\nbad 3\n<g> <h> <i> .\n")
	wantDS, wantErrs, err := rdf.ReadNTriplesLenient(bytes.NewReader(in), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 3, 8} {
		ds, errs, err := rdf.ParseNTriplesLenient(in, shards, 10)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		equalDatasets(t, fmt.Sprintf("lenient shards=%d", shards), ds, wantDS)
		if len(errs) != len(wantErrs) {
			t.Fatalf("shards=%d: %d syntax errors, want %d", shards, len(errs), len(wantErrs))
		}
		for i := range wantErrs {
			if errs[i].Line != wantErrs[i].Line {
				t.Errorf("shards=%d: error %d at line %d, want %d", shards, i, errs[i].Line, wantErrs[i].Line)
			}
		}
	}

	// Over the cap, both modes give up with a nil dataset, the capped error
	// list, and an error naming the line where the cap was exceeded.
	_, seqErrs, seqErr := rdf.ReadNTriplesLenient(bytes.NewReader(in), 2)
	for _, shards := range []int{1, 4} {
		ds, errs, err := rdf.ParseNTriplesLenient(in, shards, 2)
		if ds != nil || err == nil {
			t.Fatalf("shards=%d: over-cap parse = (%v, %v)", shards, ds, err)
		}
		if err.Error() != seqErr.Error() {
			t.Errorf("shards=%d: error %q, want %q", shards, err, seqErr)
		}
		if len(errs) != len(seqErrs) {
			t.Errorf("shards=%d: %d reported errors, want %d", shards, len(errs), len(seqErrs))
		}
	}
}

// TestParallelIngestReader covers the io.Reader wrappers.
func TestParallelIngestReader(t *testing.T) {
	in := "<a> <b> <c> .\n<a> <b> <d> .\n"
	want, err := rdf.ReadNTriples(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	got, err := rdf.ReadNTriplesParallel(strings.NewReader(in), 4)
	if err != nil {
		t.Fatal(err)
	}
	equalDatasets(t, "reader", got, want)
	got2, errs, err := rdf.ReadNTriplesParallelLenient(strings.NewReader(in+"junk\n"), 4, 0)
	if err != nil || len(errs) != 1 {
		t.Fatalf("lenient reader: errs=%v err=%v", errs, err)
	}
	equalDatasets(t, "lenient reader", got2, want)
}
