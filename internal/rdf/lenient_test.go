package rdf

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestFaultStrictParseErrorCarriesLineNumber(t *testing.T) {
	doc := "<a> <b> <c> .\n# comment\n\n<a> <b> garbage .\n<d> <e> <f> .\n"
	_, err := ReadNTriples(strings.NewReader(doc))
	if err == nil {
		t.Fatal("malformed line parsed")
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T (%v), want *SyntaxError", err, err)
	}
	if se.Line != 4 {
		t.Errorf("Line = %d, want 4 (comments and blanks count)", se.Line)
	}
	if !strings.Contains(err.Error(), "line 4") || !strings.HasPrefix(err.Error(), "ntriples:") {
		t.Errorf("error message %q should name the line", err)
	}
	if se.Unwrap() == nil {
		t.Error("SyntaxError must wrap its cause")
	}
}

func TestFaultLenientSkipsMalformedLines(t *testing.T) {
	doc := strings.Join([]string{
		"<a> <b> <c> .",
		"not a triple",
		`<a> <b> "lit"@en .`,
		"<a> <b> <c>",         // missing terminator
		`<x> "unterminated .`, // bad literal
		"<d> <e> <f> .",
	}, "\n")
	ds, malformed, err := ReadNTriplesLenient(strings.NewReader(doc), 10)
	if err != nil {
		t.Fatalf("lenient mode aborted: %v", err)
	}
	if got := len(ds.Triples); got != 3 {
		t.Errorf("parsed %d triples, want 3", got)
	}
	if len(malformed) != 3 {
		t.Fatalf("reported %d malformed lines, want 3: %v", len(malformed), malformed)
	}
	for i, wantLine := range []int{2, 4, 5} {
		if malformed[i].Line != wantLine {
			t.Errorf("malformed[%d].Line = %d, want %d", i, malformed[i].Line, wantLine)
		}
	}
}

func TestFaultLenientErrorCapGivesUp(t *testing.T) {
	var b strings.Builder
	b.WriteString("<a> <b> <c> .\n")
	for i := 0; i < 10; i++ {
		fmt.Fprintf(&b, "garbage line %d\n", i)
	}
	ds, malformed, err := ReadNTriplesLenient(strings.NewReader(b.String()), 5)
	if err == nil {
		t.Fatal("exceeding the malformed-line cap must fail")
	}
	if ds != nil {
		t.Error("a capped-out parse must not return a dataset")
	}
	if len(malformed) != 5 {
		t.Errorf("reported %d malformed lines, want the cap of 5", len(malformed))
	}
	if !strings.Contains(err.Error(), "more than 5 malformed lines") {
		t.Errorf("error %q should mention the cap", err)
	}
}

func TestFaultLenientDefaultsCap(t *testing.T) {
	// Non-positive caps select the default; a clean document is unaffected.
	ds, malformed, err := ReadNTriplesLenient(strings.NewReader("<a> <b> <c> .\n"), 0)
	if err != nil || len(malformed) != 0 || len(ds.Triples) != 1 {
		t.Errorf("clean parse: ds=%v malformed=%v err=%v", ds, malformed, err)
	}
	if DefaultMaxParseErrors < 1 {
		t.Errorf("DefaultMaxParseErrors = %d", DefaultMaxParseErrors)
	}
}

func TestFaultLenientAgreesWithStrictOnCleanInput(t *testing.T) {
	doc := "<a> <p> <b> .\n<b> <p> <c> .\n<c> <q> \"v\"^^<t> .\n"
	strict, err := ReadNTriples(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	lenient, malformed, err := ReadNTriplesLenient(strings.NewReader(doc), 0)
	if err != nil || len(malformed) != 0 {
		t.Fatalf("lenient parse of clean input: malformed=%v err=%v", malformed, err)
	}
	if len(strict.Triples) != len(lenient.Triples) {
		t.Fatalf("strict parsed %d triples, lenient %d", len(strict.Triples), len(lenient.Triples))
	}
	for i := range strict.Triples {
		s, l := strict.Triples[i], lenient.Triples[i]
		for _, a := range Attrs {
			if strict.Dict.Decode(s.Get(a)) != lenient.Dict.Decode(l.Get(a)) {
				t.Errorf("triple %d attr %v differs", i, a)
			}
		}
	}
}
