package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// This file implements a reader and writer for the N-Triples serialization
// (https://www.w3.org/TR/n-triples/), the input format of RDFind (App. C).
// Terms are kept in their surface form — "<uri>", "_:blank", or a literal
// with optional datatype/language tag — so that parsing and writing round-
// trip. The paper treats blank nodes as URIs; we keep them as opaque terms,
// which has the same effect.

// SyntaxError describes one malformed N-Triples line, with its 1-based line
// number. It wraps the underlying parse error for errors.Is/As.
type SyntaxError struct {
	Line int
	Err  error
}

func (e *SyntaxError) Error() string { return fmt.Sprintf("ntriples: line %d: %v", e.Line, e.Err) }

// Unwrap exposes the underlying parse error.
func (e *SyntaxError) Unwrap() error { return e.Err }

// DefaultMaxParseErrors is the malformed-line cap of the lenient reader when
// the caller does not set one.
const DefaultMaxParseErrors = 1000

// ReadNTriples parses an N-Triples document into a dataset. Blank lines and
// comment lines (starting with '#') are skipped. Malformed lines yield a
// *SyntaxError naming the line number.
func ReadNTriples(r io.Reader) (*Dataset, error) {
	ds, _, err := readNTriples(r, 0, false)
	return ds, err
}

// ReadNTriplesLenient parses an N-Triples document, skipping malformed lines
// instead of aborting on the first: large dirty inputs degrade gracefully.
// The skipped lines are reported as *SyntaxErrors, capped at maxErrors
// (non-positive selects DefaultMaxParseErrors); when the document exceeds
// the cap, parsing stops with a non-nil error so a fundamentally broken file
// cannot masquerade as a dirty one. I/O errors always abort.
func ReadNTriplesLenient(r io.Reader, maxErrors int) (*Dataset, []*SyntaxError, error) {
	if maxErrors <= 0 {
		maxErrors = DefaultMaxParseErrors
	}
	return readNTriples(r, maxErrors, true)
}

// readNTriples is the shared scanning loop of the strict and lenient modes.
func readNTriples(r io.Reader, maxErrors int, lenient bool) (*Dataset, []*SyntaxError, error) {
	ds := NewDataset()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	var malformed []*SyntaxError
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, p, o, err := parseNTriplesLine(line)
		if err != nil {
			serr := &SyntaxError{Line: lineNo, Err: err}
			if !lenient {
				return nil, nil, serr
			}
			malformed = append(malformed, serr)
			if len(malformed) > maxErrors {
				return nil, malformed[:maxErrors], fmt.Errorf(
					"ntriples: more than %d malformed lines, giving up (line %d: %v)",
					maxErrors, lineNo, err)
			}
			continue
		}
		ds.Add(s, p, o)
	}
	if err := sc.Err(); err != nil {
		return nil, malformed, fmt.Errorf("ntriples: %w", err)
	}
	return ds, malformed, nil
}

// parseNTriplesLine splits one statement into its three terms.
func parseNTriplesLine(line string) (s, p, o string, err error) {
	rest := line
	if s, rest, err = scanTerm(rest); err != nil {
		return "", "", "", fmt.Errorf("subject: %w", err)
	}
	if p, rest, err = scanTerm(rest); err != nil {
		return "", "", "", fmt.Errorf("predicate: %w", err)
	}
	if o, rest, err = scanTerm(rest); err != nil {
		return "", "", "", fmt.Errorf("object: %w", err)
	}
	rest = strings.TrimSpace(rest)
	if rest != "." {
		return "", "", "", fmt.Errorf("expected terminating '.', got %q", rest)
	}
	return s, p, o, nil
}

// scanTerm consumes one term (URI, blank node, or literal) from the front of
// the input and returns it with the unconsumed remainder.
func scanTerm(in string) (term, rest string, err error) {
	in = strings.TrimLeft(in, " \t")
	if in == "" {
		return "", "", fmt.Errorf("unexpected end of line")
	}
	switch in[0] {
	case '<':
		end := strings.IndexByte(in, '>')
		if end < 0 {
			return "", "", fmt.Errorf("unterminated URI")
		}
		return in[:end+1], in[end+1:], nil
	case '_':
		end := strings.IndexAny(in, " \t")
		if end < 0 {
			end = len(in)
		}
		return in[:end], in[end:], nil
	case '"':
		end := closingQuote(in)
		if end < 0 {
			return "", "", fmt.Errorf("unterminated literal")
		}
		// Absorb an optional datatype (^^<...>) or language tag (@xx).
		rest = in[end+1:]
		if strings.HasPrefix(rest, "^^<") {
			gt := strings.IndexByte(rest, '>')
			if gt < 0 {
				return "", "", fmt.Errorf("unterminated datatype URI")
			}
			end += gt + 1
			rest = rest[gt+1:]
		} else if strings.HasPrefix(rest, "@") {
			n := 1
			for n < len(rest) && rest[n] != ' ' && rest[n] != '\t' {
				n++
			}
			end += n
			rest = rest[n:]
		}
		return in[:end+1], rest, nil
	default:
		return "", "", fmt.Errorf("unexpected character %q", in[0])
	}
}

// closingQuote finds the index of the unescaped closing quote of a literal
// that starts at in[0] == '"'.
func closingQuote(in string) int {
	for i := 1; i < len(in); i++ {
		switch in[i] {
		case '\\':
			i++ // skip the escaped character
		case '"':
			return i
		}
	}
	return -1
}

// WriteNTriples serializes a dataset as N-Triples. Terms that do not already
// carry N-Triples syntax (no '<', '"', or "_:" prefix) are wrapped as URIs so
// that programmatically built datasets serialize to valid documents.
func WriteNTriples(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, t := range ds.Triples {
		s := formatTerm(ds.Dict.Decode(t.S))
		p := formatTerm(ds.Dict.Decode(t.P))
		o := formatTerm(ds.Dict.Decode(t.O))
		if _, err := fmt.Fprintf(bw, "%s %s %s .\n", s, p, o); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func formatTerm(term string) string {
	if term == "" {
		return "<>"
	}
	switch term[0] {
	case '<', '"', '_':
		return term
	}
	return "<" + term + ">"
}
