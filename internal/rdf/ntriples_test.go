package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadNTriplesBasic(t *testing.T) {
	doc := `
# University example, Table 1 of the paper.
<http://ex.org/patrick> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://ex.org/gradStudent> .
<http://ex.org/mike> <http://ex.org/undergradFrom> <http://ex.org/cmu> .

_:b0 <http://ex.org/label> "a literal" .
`
	ds, err := ReadNTriples(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Size() != 3 {
		t.Fatalf("Size = %d, want 3", ds.Size())
	}
	if got := ds.Dict.Decode(ds.Triples[2].S); got != "_:b0" {
		t.Errorf("blank node subject = %q", got)
	}
	if got := ds.Dict.Decode(ds.Triples[2].O); got != `"a literal"` {
		t.Errorf("literal object = %q", got)
	}
}

func TestReadNTriplesLiteralVariants(t *testing.T) {
	doc := `<a:s> <a:p> "plain" .
<a:s> <a:p> "typed"^^<http://www.w3.org/2001/XMLSchema#int> .
<a:s> <a:p> "tagged"@en .
<a:s> <a:p> "esc \" quote" .
<a:s> <a:p> "dot . inside" .
`
	ds, err := ReadNTriples(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`"plain"`,
		`"typed"^^<http://www.w3.org/2001/XMLSchema#int>`,
		`"tagged"@en`,
		`"esc \" quote"`,
		`"dot . inside"`,
	}
	for i, w := range want {
		if got := ds.Dict.Decode(ds.Triples[i].O); got != w {
			t.Errorf("object %d = %q, want %q", i, got, w)
		}
	}
}

func TestReadNTriplesErrors(t *testing.T) {
	bad := []string{
		`<a:s> <a:p> <a:o>`,           // missing dot
		`<a:s> <a:p> .`,               // missing object
		`<a:s <a:p> <a:o> .`,          // unterminated URI
		`<a:s> <a:p> "open .`,         // unterminated literal
		`<a:s> <a:p> "x"^^<broken .`,  // unterminated datatype
		`<a:s> <a:p> <a:o> . trailer`, // junk after dot
		`!bang <a:p> <a:o> .`,         // bad first character
	}
	for _, doc := range bad {
		if _, err := ReadNTriples(strings.NewReader(doc)); err == nil {
			t.Errorf("no error for malformed line %q", doc)
		}
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	ds := NewDataset()
	ds.Add("<a:patrick>", "<a:type>", "<a:gradStudent>")
	ds.Add("_:b1", "<a:label>", `"hello \"world\""`)
	ds.Add("<a:mike>", "<a:age>", `"29"^^<http://www.w3.org/2001/XMLSchema#int>`)

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNTriples(&buf)
	if err != nil {
		t.Fatalf("re-parse failed: %v\ndocument:\n%s", err, buf.String())
	}
	if back.Size() != ds.Size() {
		t.Fatalf("round trip changed size: %d -> %d", ds.Size(), back.Size())
	}
	for i := range ds.Triples {
		for _, a := range Attrs {
			orig := ds.Dict.Decode(ds.Triples[i].Get(a))
			got := back.Dict.Decode(back.Triples[i].Get(a))
			if orig != got {
				t.Errorf("triple %d attr %v: %q -> %q", i, a, orig, got)
			}
		}
	}
}

func TestWriteNTriplesWrapsBareTerms(t *testing.T) {
	ds := NewDataset()
	ds.Add("patrick", "memberOf", "csd")
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, ds); err != nil {
		t.Fatal(err)
	}
	want := "<patrick> <memberOf> <csd> .\n"
	if buf.String() != want {
		t.Errorf("output = %q, want %q", buf.String(), want)
	}
	if _, err := ReadNTriples(&buf); err != nil {
		t.Errorf("written document does not re-parse: %v", err)
	}
}
