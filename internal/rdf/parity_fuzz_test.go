package rdf

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzReaderParity pins the document-level contract between the sequential
// reader and the parallel byte-slice kernel: over any input, ReadNTriples and
// ParseNTriples must agree *exactly* — same dataset (triples, dictionary IDs,
// decoded terms), same malformed-line reports, and same error text — in
// strict and lenient mode, at every shard count, including the over-cap
// rejection path. The only documented divergence is the sequential scanner's
// 16 MiB line cap, which fuzz inputs cannot reach.
func FuzzReaderParity(f *testing.F) {
	seeds := []string{
		"",
		"\n",
		"\r\n",
		"<s> <p> <o> .",   // no trailing newline
		"<s> <p> <o> .\n", // trailing newline
		"<s> <p> <o> .\r\n<s2> <p> <o> .\r\n", // CRLF throughout
		"<s> <p> <o> .\n<s2> <p> <o> .\r\n",   // mixed line endings
		"<s> <p> <o> .\r",                     // stray CR, no LF
		"# comment\n\n   \t\n<s> <p> <o> .\n",
		`<s> <p> "lit with \" escape"@en .` + "\n" + `<s> <p> "typed"^^<t> .`,
		"_:b0 <p> _:b1 .\n<a><b><c>.",
		// Malformed runs that cross the tiny lenient cap used below.
		"bad\nbad\nbad\nbad\nbad\n",
		"bad\n<ok> <ok> <ok> .\nbad\nbad\nbad\nbad\n<ok2> <ok2> <ok2> .",
		"<s> <p> <o>\n<s> <p> \"unterminated\n<s> <p> <unterminated\n",
		strings.Repeat("<s> <p> <o> .\n", 9) + "broken .\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, input string) {
		// Strict: error text and dataset must match at every shard count.
		seqDS, seqErr := ReadNTriples(strings.NewReader(input))
		for _, shards := range []int{1, 2, 4, 8} {
			parDS, parErr := ParseNTriples([]byte(input), shards)
			if !sameError(seqErr, parErr) {
				t.Fatalf("strict shards=%d: error diverged: %v vs %v", shards, parErr, seqErr)
			}
			if seqErr == nil {
				mustEqualDatasets(t, fmt.Sprintf("strict shards=%d", shards), seqDS, parDS)
			}
		}

		// Lenient with a tiny cap, so fuzzed inputs routinely cross it: the
		// over-cap error, the truncated report, and the dataset must all match.
		const errCap = 3
		seqDS, seqMal, seqErr := ReadNTriplesLenient(strings.NewReader(input), errCap)
		for _, shards := range []int{1, 2, 4, 8} {
			parDS, parMal, parErr := ParseNTriplesLenient([]byte(input), shards, errCap)
			if !sameError(seqErr, parErr) {
				t.Fatalf("lenient shards=%d: error diverged: %v vs %v", shards, parErr, seqErr)
			}
			if len(parMal) != len(seqMal) {
				t.Fatalf("lenient shards=%d: %d malformed reports vs %d", shards, len(parMal), len(seqMal))
			}
			for i := range seqMal {
				if parMal[i].Line != seqMal[i].Line || parMal[i].Error() != seqMal[i].Error() {
					t.Fatalf("lenient shards=%d: malformed report %d diverged: %v vs %v",
						shards, i, parMal[i], seqMal[i])
				}
			}
			if seqErr == nil {
				mustEqualDatasets(t, fmt.Sprintf("lenient shards=%d", shards), seqDS, parDS)
			}
		}
	})
}

// sameError reports whether two reader errors are interchangeable: both nil,
// or both non-nil with identical text.
func sameError(a, b error) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || a.Error() == b.Error()
}

// mustEqualDatasets asserts full dataset equality: triple sequences, the
// dictionary's ID assignment, and the decoded surface terms.
func mustEqualDatasets(t *testing.T, label string, want, got *Dataset) {
	t.Helper()
	if got.Size() != want.Size() || got.Dict.Len() != want.Dict.Len() {
		t.Fatalf("%s: %d triples/%d terms, want %d/%d",
			label, got.Size(), got.Dict.Len(), want.Size(), want.Dict.Len())
	}
	for i := range want.Triples {
		if got.Triples[i] != want.Triples[i] {
			t.Fatalf("%s: triple %d = %+v, want %+v", label, i, got.Triples[i], want.Triples[i])
		}
	}
	for id := 0; id < want.Dict.Len(); id++ {
		if g, w := got.Dict.Decode(Value(id)), want.Dict.Decode(Value(id)); g != w {
			t.Fatalf("%s: term %d = %q, want %q", label, id, g, w)
		}
	}
}
