// Package rdf provides the RDF data model used throughout the repository:
// triples of subject, predicate, and object terms, a string dictionary that
// encodes terms as dense integer IDs, and a reader/writer for the N-Triples
// serialization.
//
// Following the paper (§2), blank nodes are treated as URIs and objects may
// be literals. All downstream algorithms operate on dictionary-encoded
// triples for compactness; the dictionary restores the surface form when
// results are rendered.
package rdf

import "fmt"

// Attr identifies one of the three elements of a triple. The paper uses
// α, β, γ to range over these.
type Attr uint8

const (
	Subject Attr = iota
	Predicate
	Object
)

// AttrNone marks an absent attribute, e.g. the second condition slot of a
// unary condition.
const AttrNone Attr = 0xFF

// String returns the single-letter name used in the paper ("s", "p", "o").
func (a Attr) String() string {
	switch a {
	case Subject:
		return "s"
	case Predicate:
		return "p"
	case Object:
		return "o"
	case AttrNone:
		return "-"
	}
	return fmt.Sprintf("attr(%d)", uint8(a))
}

// Attrs lists the three triple elements in canonical order.
var Attrs = [3]Attr{Subject, Predicate, Object}

// Others returns the two attributes that are not a, in canonical order.
// It corresponds to the paper's choice of condition attributes β and γ for a
// projection attribute α.
func (a Attr) Others() (Attr, Attr) {
	switch a {
	case Subject:
		return Predicate, Object
	case Predicate:
		return Subject, Object
	default:
		return Subject, Predicate
	}
}

// Value is a dictionary-encoded RDF term.
type Value uint32

// NoValue marks an absent term slot.
const NoValue Value = 0xFFFFFFFF

// Triple is a dictionary-encoded RDF statement (s, p, o).
type Triple struct {
	S, P, O Value
}

// Get projects the triple on one element, t.α in the paper's notation.
func (t Triple) Get(a Attr) Value {
	switch a {
	case Subject:
		return t.S
	case Predicate:
		return t.P
	default:
		return t.O
	}
}

// Dataset is a dictionary plus the triples encoded against it. It is the
// unit of input for discovery runs and generators.
type Dataset struct {
	Dict    *Dictionary
	Triples []Triple
}

// NewDataset returns an empty dataset with a fresh dictionary.
func NewDataset() *Dataset {
	return &Dataset{Dict: NewDictionary()}
}

// Add encodes and appends one triple given by surface forms.
func (d *Dataset) Add(s, p, o string) {
	d.Triples = append(d.Triples, Triple{
		S: d.Dict.Encode(s),
		P: d.Dict.Encode(p),
		O: d.Dict.Encode(o),
	})
}

// AddTriple appends an already-encoded triple.
func (d *Dataset) AddTriple(t Triple) { d.Triples = append(d.Triples, t) }

// Size returns the number of triples.
func (d *Dataset) Size() int { return len(d.Triples) }

// String renders a triple against a dictionary, for diagnostics.
func (t Triple) String(dict *Dictionary) string {
	return fmt.Sprintf("(%s, %s, %s)", dict.Decode(t.S), dict.Decode(t.P), dict.Decode(t.O))
}
