package rdf

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestAttrString(t *testing.T) {
	cases := map[Attr]string{Subject: "s", Predicate: "p", Object: "o", AttrNone: "-"}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("Attr(%d).String() = %q, want %q", a, got, want)
		}
	}
	if got := Attr(7).String(); got != "attr(7)" {
		t.Errorf("unknown attr rendered as %q", got)
	}
}

func TestAttrOthers(t *testing.T) {
	for _, a := range Attrs {
		b, c := a.Others()
		if b == a || c == a || b == c {
			t.Fatalf("Others(%v) = (%v, %v): not the two complements", a, b, c)
		}
		if b > c {
			t.Errorf("Others(%v) = (%v, %v): not in canonical order", a, b, c)
		}
	}
}

func TestTripleGet(t *testing.T) {
	tr := Triple{S: 1, P: 2, O: 3}
	if tr.Get(Subject) != 1 || tr.Get(Predicate) != 2 || tr.Get(Object) != 3 {
		t.Errorf("Get projections wrong: %v %v %v", tr.Get(Subject), tr.Get(Predicate), tr.Get(Object))
	}
}

func TestDatasetAddEncodes(t *testing.T) {
	ds := NewDataset()
	ds.Add("patrick", "rdf:type", "gradStudent")
	ds.Add("mike", "rdf:type", "gradStudent")
	if ds.Size() != 2 {
		t.Fatalf("Size = %d, want 2", ds.Size())
	}
	if ds.Triples[0].P != ds.Triples[1].P {
		t.Errorf("same predicate got different IDs: %v vs %v", ds.Triples[0].P, ds.Triples[1].P)
	}
	if ds.Triples[0].O != ds.Triples[1].O {
		t.Errorf("same object got different IDs")
	}
	if ds.Triples[0].S == ds.Triples[1].S {
		t.Errorf("different subjects share an ID")
	}
}

func TestTripleStringRendersSurfaceForms(t *testing.T) {
	ds := NewDataset()
	ds.Add("a", "b", "c")
	if got := ds.Triples[0].String(ds.Dict); got != "(a, b, c)" {
		t.Errorf("String = %q", got)
	}
}

func TestDictionaryRoundTrip(t *testing.T) {
	d := NewDictionary()
	words := []string{"alpha", "beta", "gamma", "alpha", ""}
	ids := make([]Value, len(words))
	for i, w := range words {
		ids[i] = d.Encode(w)
	}
	if ids[0] != ids[3] {
		t.Errorf("re-encoding the same term changed its ID: %v vs %v", ids[0], ids[3])
	}
	if d.Len() != 4 {
		t.Errorf("Len = %d, want 4 distinct terms", d.Len())
	}
	for i, w := range words {
		if got := d.Decode(ids[i]); got != w {
			t.Errorf("Decode(Encode(%q)) = %q", w, got)
		}
	}
}

func TestDictionaryLookup(t *testing.T) {
	d := NewDictionary()
	id := d.Encode("present")
	if got, ok := d.Lookup("present"); !ok || got != id {
		t.Errorf("Lookup(present) = (%v, %v), want (%v, true)", got, ok, id)
	}
	if _, ok := d.Lookup("absent"); ok {
		t.Errorf("Lookup(absent) reported present")
	}
	if d.Len() != 1 {
		t.Errorf("Lookup interned a term: Len = %d", d.Len())
	}
}

func TestDictionaryDecodeUnknown(t *testing.T) {
	d := NewDictionary()
	if got := d.Decode(NoValue); got != "?" {
		t.Errorf("Decode(NoValue) = %q, want \"?\"", got)
	}
	if got := d.Decode(42); got != "?" {
		t.Errorf("Decode(unissued) = %q, want \"?\"", got)
	}
}

// Property: Encode is injective on distinct strings and Decode inverts it.
func TestDictionaryEncodeInjective(t *testing.T) {
	f := func(words []string) bool {
		d := NewDictionary()
		seen := make(map[string]Value)
		for _, w := range words {
			id := d.Encode(w)
			if prev, ok := seen[w]; ok && prev != id {
				return false
			}
			seen[w] = id
			if d.Decode(id) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkDictionaryEncode(b *testing.B) {
	words := make([]string, 1024)
	for i := range words {
		words[i] = fmt.Sprintf("http://example.org/resource/%d", i)
	}
	d := NewDictionary()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Encode(words[i%len(words)])
	}
}
