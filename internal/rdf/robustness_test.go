package rdf

import (
	"strings"
	"testing"
	"testing/quick"
)

// The parsers face arbitrary input from the filesystem; none of them may
// panic, whatever the bytes. Errors are fine, crashes are not.

func TestNTriplesNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		ReadNTriples(strings.NewReader(input))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTurtleNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		ReadTurtle(strings.NewReader(input))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
	// Adversarial fragments around the tokenizer's edges.
	for _, in := range []string{
		"@prefix", "@base", "PREFIX", "@prefix :",
		"a a a", ":", "<>", `""`, `"""`, "_:", "1", "+", "-", ".",
		"@prefix p: <x> . p:a p:b 1.2.3 .",
		"@prefix p: <x> . p:a p:b \"l\"@ .",
		"@prefix p: <x> . p:a a p:b ; .",
		strings.Repeat("#comment\n", 5),
	} {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", in, r)
				}
			}()
			ReadTurtle(strings.NewReader(in))
		}()
	}
}

func TestParseTermNeverPanics(t *testing.T) {
	f := func(input string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", input, r)
				ok = false
			}
		}()
		ParseTerm(input)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSnapshotReadNeverPanics(t *testing.T) {
	f := func(input []byte) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %x: %v", input, r)
				ok = false
			}
		}()
		ReadSnapshot(strings.NewReader(string(input)))
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
