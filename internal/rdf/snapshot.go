package rdf

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Snapshot is a compact binary serialization of a dataset — dictionary plus
// dictionary-encoded triples — for fast save/restore of generated corpora
// (re-parsing N-Triples costs an order of magnitude more). Format:
//
//	magic "RDFS" | version u8 | termCount uvarint | terms (uvarint len + bytes)*
//	| tripleCount uvarint | (s uvarint, p uvarint, o uvarint)*
//
// The term order preserves dictionary IDs, so encoded triples need no
// remapping.

const (
	snapshotMagic   = "RDFS"
	snapshotVersion = 1
)

// WriteSnapshot serializes the dataset in the binary snapshot format.
func WriteSnapshot(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(snapshotMagic); err != nil {
		return err
	}
	if err := bw.WriteByte(snapshotVersion); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(ds.Dict.Len())); err != nil {
		return err
	}
	for id := 0; id < ds.Dict.Len(); id++ {
		term := ds.Dict.Decode(Value(id))
		if err := writeUvarint(uint64(len(term))); err != nil {
			return err
		}
		if _, err := bw.WriteString(term); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(ds.Triples))); err != nil {
		return err
	}
	for _, t := range ds.Triples {
		for _, v := range [3]Value{t.S, t.P, t.O} {
			if err := writeUvarint(uint64(v)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSnapshot restores a dataset written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Dataset, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(snapshotMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("rdf: snapshot header: %w", err)
	}
	if string(magic) != snapshotMagic {
		return nil, fmt.Errorf("rdf: not a snapshot (magic %q)", magic)
	}
	version, err := br.ReadByte()
	if err != nil {
		return nil, err
	}
	if version != snapshotVersion {
		return nil, fmt.Errorf("rdf: unsupported snapshot version %d", version)
	}
	termCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("rdf: term count: %w", err)
	}
	ds := NewDataset()
	termBuf := make([]byte, 0, 256)
	// Length fields are untrusted: cap allocations so a corrupt header
	// cannot demand gigabytes up front.
	const maxTermLen = 1 << 24
	for i := uint64(0); i < termCount; i++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("rdf: term %d: %w", i, err)
		}
		if n > maxTermLen {
			return nil, fmt.Errorf("rdf: term %d claims %d bytes", i, n)
		}
		if cap(termBuf) < int(n) {
			termBuf = make([]byte, n)
		}
		termBuf = termBuf[:n]
		if _, err := io.ReadFull(br, termBuf); err != nil {
			return nil, fmt.Errorf("rdf: term %d: %w", i, err)
		}
		if got := ds.Dict.Encode(string(termBuf)); got != Value(i) {
			return nil, fmt.Errorf("rdf: duplicate term %q in snapshot", termBuf)
		}
	}
	tripleCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("rdf: triple count: %w", err)
	}
	capHint := tripleCount
	if capHint > 1<<20 {
		capHint = 1 << 20 // grow incrementally past this; the count is untrusted
	}
	ds.Triples = make([]Triple, 0, capHint)
	for i := uint64(0); i < tripleCount; i++ {
		var vals [3]Value
		for j := range vals {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("rdf: triple %d: %w", i, err)
			}
			if v >= termCount {
				return nil, fmt.Errorf("rdf: triple %d references unknown term %d", i, v)
			}
			vals[j] = Value(v)
		}
		ds.Triples = append(ds.Triples, Triple{S: vals[0], P: vals[1], O: vals[2]})
	}
	return ds, nil
}
