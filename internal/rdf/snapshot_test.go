package rdf

import (
	"bytes"
	"strings"
	"testing"
)

func snapshotSample() *Dataset {
	ds := NewDataset()
	ds.Add("patrick", "rdf:type", "gradStudent")
	ds.Add("mike", "rdf:type", "gradStudent")
	ds.Add("patrick", "memberOf", "csd")
	ds.Add("_:b", "label", `"a literal with \"escapes\""`)
	return ds
}

func TestSnapshotRoundTrip(t *testing.T) {
	ds := snapshotSample()
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != ds.Size() || back.Dict.Len() != ds.Dict.Len() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			back.Size(), back.Dict.Len(), ds.Size(), ds.Dict.Len())
	}
	for i, tr := range ds.Triples {
		for _, a := range Attrs {
			if ds.Dict.Decode(tr.Get(a)) != back.Dict.Decode(back.Triples[i].Get(a)) {
				t.Errorf("triple %d attr %v differs", i, a)
			}
		}
	}
}

func TestSnapshotEmptyDataset(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSnapshot(&buf, NewDataset()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil || back.Size() != 0 {
		t.Errorf("empty round trip: size=%d err=%v", back.Size(), err)
	}
}

func TestSnapshotRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"bad magic": "NOPE\x01",
		"truncated": "RDFS\x01\x05",
	}
	for name, in := range cases {
		if _, err := ReadSnapshot(strings.NewReader(in)); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
	// Wrong version.
	if _, err := ReadSnapshot(strings.NewReader("RDFS\x63")); err == nil {
		t.Errorf("version check missing")
	}
	// A triple referencing an out-of-range term: terms=1 ("x"), triple (0,0,9).
	bad := []byte("RDFS\x01")
	bad = append(bad, 1)      // one term
	bad = append(bad, 1, 'x') // term "x"
	bad = append(bad, 1)      // one triple
	bad = append(bad, 0, 0, 9)
	if _, err := ReadSnapshot(bytes.NewReader(bad)); err == nil {
		t.Errorf("out-of-range term reference accepted")
	}
	// A term claiming an absurd length must be rejected, not allocated.
	huge := []byte("RDFS\x01")
	huge = append(huge, 1)                            // one term
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // ~34 GB length
	if _, err := ReadSnapshot(bytes.NewReader(huge)); err == nil {
		t.Errorf("absurd term length accepted")
	}
	// An absurd triple count must not pre-allocate; truncated data errors out.
	many := []byte("RDFS\x01")
	many = append(many, 1, 1, 'x')                    // one term "x"
	many = append(many, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F) // huge triple count
	if _, err := ReadSnapshot(bytes.NewReader(many)); err == nil {
		t.Errorf("truncated huge snapshot accepted")
	}
}

func TestSnapshotSmallerThanNTriples(t *testing.T) {
	ds := NewDataset()
	for i := 0; i < 2000; i++ {
		ds.Add("http://example.org/a-rather-long-subject-name",
			"http://example.org/predicate",
			"http://example.org/object")
	}
	// Duplicates collapse in the dictionary; add distinct ones too.
	for i := 0; i < 2000; i++ {
		ds.Add("s", "p", string(rune('a'+i%26))+string(rune('0'+i/26%10)))
	}
	var nt, snap bytes.Buffer
	if err := WriteNTriples(&nt, ds); err != nil {
		t.Fatal(err)
	}
	if err := WriteSnapshot(&snap, ds); err != nil {
		t.Fatal(err)
	}
	if snap.Len() >= nt.Len() {
		t.Errorf("snapshot (%d bytes) not smaller than N-Triples (%d bytes)", snap.Len(), nt.Len())
	}
}

func BenchmarkSnapshotRead(b *testing.B) {
	ds := snapshotSample()
	var buf bytes.Buffer
	WriteSnapshot(&buf, ds)
	data := buf.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSnapshot(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
