package rdf

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
)

// This file implements block-streaming ingest: readers that decode an
// arbitrarily large document through a bounded window and hand the caller a
// sequence of TermBlocks — triples encoded against a block-local term table
// — in document order. Nothing proportional to the input is ever held in
// memory by the reader itself; peak footprint is O(shards × block size).
//
// The N-Triples path reuses the byte-range shard scanner from ingest.go:
// chunks are cut on line boundaries as they are read, scanned concurrently,
// and re-sequenced so blocks are emitted in document order. Because shard
// merging (interning each block's terms in first-occurrence order) assigns
// exactly the IDs a sequential read would, a consumer that folds the blocks
// into a Dictionary in emission order reproduces the slurp readers byte for
// byte at any shard count or block size — the stream parity suite pins this.
//
// The Turtle path wraps the statement parser in a sliding window: parse
// statements from the window; when a parse fails (or succeeds suspiciously
// close to the window's edge, where a truncated token can masquerade as a
// complete one) and more input exists, the window is refilled and the
// statement retried from its start. Statement output is buffered on the
// parser and committed only when the statement completes, so retries never
// duplicate triples.

// TermBlock is one streamed block of parsed triples. Terms holds the
// block-local term table in first-occurrence order; Triples index into it.
// Errs carries the block's malformed lines (lenient N-Triples mode only),
// in document order. Bytes is the input byte count the block was decoded
// from, for ingest accounting.
type TermBlock struct {
	Terms   []string
	Triples []BlockTriple
	Errs    []*SyntaxError
	Bytes   int
}

// StreamConfig tunes the streaming readers. The zero value is ready to use.
type StreamConfig struct {
	// Shards is the number of concurrent N-Triples parse shards (values
	// below 1 select 1). Ignored by the Turtle reader.
	Shards int
	// BlockBytes is the N-Triples chunk granularity (values <= 0 select
	// 1 MiB). Blocks end on line boundaries, so actual blocks may run a
	// little long.
	BlockBytes int
	// BlockTriples is the Turtle block emission granularity (values <= 0
	// select 4096 triples).
	BlockTriples int
	// Lenient makes the N-Triples reader skip malformed lines, attaching
	// them to blocks as Errs, instead of failing on the first one. The
	// Turtle reader has no lenient mode and ignores this.
	Lenient bool
	// MaxErrors caps lenient-mode malformed lines (values <= 0 select
	// DefaultMaxParseErrors), mirroring ReadNTriplesLenient.
	MaxErrors int
}

const (
	defaultBlockBytes   = 1 << 20
	defaultBlockTriples = 4096
	// turtleWindow is the Turtle refill granularity and low-water mark.
	turtleWindow = 64 << 10
	// turtleMargin is the lookahead a successfully parsed statement must
	// leave unconsumed before it is committed: the grammar looks at most a
	// few bytes past a token ("^^<", a decimal point and digit, a language
	// subtag), so a statement ending nearer to a non-final window edge is
	// reparsed after a refill in case a truncated token parsed as complete.
	turtleMargin = 8
)

// AppendBlock interns blk's terms into the dataset's dictionary and appends
// its triples in document order. remap is scratch reused across calls; pass
// the previous return value (or nil). Folding a document's blocks in
// emission order reproduces the slurp readers' dictionary and triple order
// exactly.
func (ds *Dataset) AppendBlock(blk *TermBlock, remap []Value) []Value {
	remap = remap[:0]
	for _, term := range blk.Terms {
		remap = append(remap, ds.Dict.Encode(term))
	}
	for _, bt := range blk.Triples {
		ds.Triples = append(ds.Triples, Triple{S: remap[bt.S], P: remap[bt.P], O: remap[bt.O]})
	}
	return remap
}

// StreamNTriples parses an N-Triples document from r as a bounded stream,
// emitting TermBlocks in document order. In strict mode the first malformed
// line aborts with its *SyntaxError (blocks already emitted must be
// discarded by the caller); in lenient mode malformed lines ride along on
// each block's Errs, with the cap enforced exactly like ReadNTriplesLenient.
// A non-nil error from emit stops the stream and is returned unchanged.
func StreamNTriples(r io.Reader, cfg StreamConfig, emit func(*TermBlock) error) error {
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	blockBytes := cfg.BlockBytes
	if blockBytes <= 0 {
		blockBytes = defaultBlockBytes
	}
	maxErrors := cfg.MaxErrors
	if maxErrors <= 0 {
		maxErrors = DefaultMaxParseErrors
	}
	br := bufio.NewReaderSize(r, 64<<10)

	type job struct {
		chunk     []byte
		startLine int
		lines     int
		res       chan shardResult // capacity 1: the worker never blocks
	}
	jobs := make(chan *job)
	// pending is the in-order view of dispatched jobs and the memory bound:
	// at most shards+1 queued chunks plus one per worker are in flight
	// between the reader and the emitter.
	pending := make(chan *job, shards+1)
	quit := make(chan struct{})
	var quitOnce sync.Once
	stop := func() { quitOnce.Do(func() { close(quit) }) }
	defer stop()

	var readErr error // written by the reader before closing pending
	go func() {
		defer close(jobs)
		defer close(pending)
		startLine := 1
		for {
			chunk, err := readChunk(br, blockBytes)
			if len(chunk) > 0 {
				j := &job{
					chunk:     chunk,
					startLine: startLine,
					lines:     bytes.Count(chunk, []byte{'\n'}),
					res:       make(chan shardResult, 1),
				}
				startLine += j.lines
				// Dispatch before enqueueing on pending: once the emitter can
				// see a job, a worker is guaranteed to have received it, so
				// the emitter's <-j.res cannot block forever when an early
				// stop makes the reader bail between the two sends.
				select {
				case jobs <- j:
				case <-quit:
					return
				}
				select {
				case pending <- j:
				case <-quit:
					return
				}
			}
			if err == io.EOF {
				return
			}
			if err != nil {
				readErr = fmt.Errorf("ntriples: %w", err)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				j.res <- scanShard(j.chunk, j.startLine, j.lines)
			}
		}()
	}

	var finalErr error
	nerrs := 0
	for j := range pending {
		res := <-j.res
		if finalErr != nil {
			continue // drain so the reader and workers can exit
		}
		if !cfg.Lenient {
			if len(res.errs) > 0 {
				finalErr = res.errs[0]
				stop()
				continue
			}
		} else if nerrs+len(res.errs) > maxErrors {
			over := res.errs[maxErrors-nerrs]
			finalErr = fmt.Errorf(
				"ntriples: more than %d malformed lines, giving up (line %d: %v)",
				maxErrors, over.Line, over.Err)
			stop()
			continue
		} else {
			nerrs += len(res.errs)
		}
		blk := &TermBlock{
			Terms:   res.dict.order,
			Triples: res.triples,
			Errs:    res.errs,
			Bytes:   len(j.chunk),
		}
		if err := emit(blk); err != nil {
			finalErr = err
			stop()
		}
	}
	wg.Wait()
	if finalErr != nil {
		return finalErr
	}
	return readErr
}

// readChunk reads about blockBytes bytes and extends to the next line
// boundary, so no line straddles two chunks. It returns io.EOF alongside
// the final (possibly empty) chunk.
func readChunk(br *bufio.Reader, blockBytes int) ([]byte, error) {
	buf := make([]byte, blockBytes)
	n, err := io.ReadFull(br, buf)
	if err == io.EOF {
		return nil, io.EOF
	}
	if err == io.ErrUnexpectedEOF {
		return buf[:n], io.EOF
	}
	if err != nil {
		return nil, err
	}
	tail, rerr := br.ReadBytes('\n')
	buf = append(buf, tail...)
	if rerr == io.EOF {
		return buf, io.EOF
	}
	if rerr != nil {
		return nil, rerr
	}
	return buf, nil
}

// encodeString is encode for terms already materialized as strings (the
// Turtle path, whose surface forms are synthesized rather than sliced from
// the input buffer).
func (d *shardDict) encodeString(s string) uint32 {
	if id, ok := d.byStr[s]; ok {
		return id
	}
	id := uint32(len(d.order))
	d.byStr[s] = id
	d.order = append(d.order, s)
	return id
}

// errTurtleWindow forces a refill-and-retry of a statement that parsed
// successfully but ended too close to a non-final window edge. It never
// escapes streamTurtle.
var errTurtleWindow = errors.New("turtle: statement too close to window edge")

// StreamTurtle parses a Turtle document from r through a bounded sliding
// window, emitting TermBlocks of about cfg.BlockTriples triples in document
// order. Terms use their N-Triples surface form, so a consumer folding the
// blocks reproduces ReadTurtle exactly. Statements larger than the window
// grow it transiently; peak memory is O(largest statement + window).
func StreamTurtle(r io.Reader, cfg StreamConfig, emit func(*TermBlock) error) error {
	blockTriples := cfg.BlockTriples
	if blockTriples <= 0 {
		blockTriples = defaultBlockTriples
	}
	return streamTurtle(r, turtleWindow, blockTriples, emit)
}

func streamTurtle(r io.Reader, window, blockTriples int, emit func(*TermBlock) error) error {
	if window < 16 {
		window = 16
	}
	p := &turtleParser{prefixes: map[string]string{}}
	br := bufio.NewReaderSize(r, 32<<10)
	eofInput := false
	consumed := 0 // input bytes already committed to emitted or pending-flush blocks
	refill := func() error {
		if eofInput {
			return nil
		}
		buf := make([]byte, window)
		n, err := io.ReadFull(br, buf)
		if n > 0 {
			p.input += string(buf[:n])
		}
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			eofInput = true
			p.final = true
			return nil
		}
		if err != nil {
			return fmt.Errorf("turtle: %w", err)
		}
		return nil
	}

	dict := newShardDict(blockTriples)
	triples := make([]BlockTriple, 0, blockTriples)
	lastMark := 0 // total consumed bytes at the previous flush
	flush := func() error {
		if len(triples) == 0 {
			return nil
		}
		mark := consumed + p.pos
		blk := &TermBlock{Terms: dict.order, Triples: triples, Bytes: mark - lastMark}
		lastMark = mark
		dict = newShardDict(blockTriples)
		triples = make([]BlockTriple, 0, blockTriples)
		return emit(blk)
	}

	for {
		// Compact: drop bytes consumed by committed statements, and keep the
		// window topped up so most statements parse without a retry.
		if p.pos > 0 {
			consumed += p.pos
			p.input = p.input[p.pos:]
			p.pos = 0
		}
		if len(p.input) < window && !eofInput {
			if err := refill(); err != nil {
				return err
			}
			continue
		}
		if p.eof() {
			if !eofInput {
				if err := refill(); err != nil {
					return err
				}
				continue
			}
			break
		}
		savePos, saveLine, savePending := p.pos, p.line, len(p.pending)
		err := p.statement()
		if err == nil && !eofInput && len(p.input)-p.pos < turtleMargin {
			err = errTurtleWindow
		}
		if err != nil {
			if !eofInput {
				p.pos, p.line = savePos, saveLine
				p.pending = p.pending[:savePending]
				if rerr := refill(); rerr != nil {
					return rerr
				}
				continue
			}
			return err
		}
		// Statement complete: commit its triples to the current block.
		for _, t := range p.pending {
			triples = append(triples, BlockTriple{
				S: dict.encodeString(t.s),
				P: dict.encodeString(t.p),
				O: dict.encodeString(t.o),
			})
		}
		p.pending = p.pending[:0]
		if len(triples) >= blockTriples {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}
