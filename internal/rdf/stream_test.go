package rdf

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"
)

// collectStream folds a streamed document into a Dataset plus the
// accumulated lenient errors, the way the source layer consumes blocks.
func collectStream(t *testing.T, data []byte, cfg StreamConfig) (*Dataset, []*SyntaxError, error) {
	t.Helper()
	ds := NewDataset()
	var errs []*SyntaxError
	var remap []Value
	err := StreamNTriples(bytes.NewReader(data), cfg, func(blk *TermBlock) error {
		remap = ds.AppendBlock(blk, remap)
		errs = append(errs, blk.Errs...)
		return nil
	})
	return ds, errs, err
}

func sameDatasets(t *testing.T, label string, got, want *Dataset) {
	t.Helper()
	if got.Dict.Len() != want.Dict.Len() {
		t.Fatalf("%s: dictionary has %d terms, want %d", label, got.Dict.Len(), want.Dict.Len())
	}
	for id := 0; id < want.Dict.Len(); id++ {
		term := want.Dict.Decode(Value(id))
		gotID, ok := got.Dict.Lookup(term)
		if !ok || gotID != Value(id) {
			t.Fatalf("%s: term %q has ID %d (present=%v), want %d", label, term, gotID, ok, id)
		}
	}
	if len(got.Triples) != len(want.Triples) {
		t.Fatalf("%s: %d triples, want %d", label, len(got.Triples), len(want.Triples))
	}
	for i := range want.Triples {
		if got.Triples[i] != want.Triples[i] {
			t.Fatalf("%s: triple %d = %+v, want %+v", label, i, got.Triples[i], want.Triples[i])
		}
	}
}

// TestStreamNTriplesParity: streamed ingest reproduces the slurp readers'
// dictionary IDs and triple order at every shard count and block size,
// including block sizes far below a line length.
func TestStreamNTriplesParity(t *testing.T) {
	data, err := os.ReadFile("../../cmd/rdfind/testdata/museums.nt")
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReadNTriples(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 4} {
		for _, blockBytes := range []int{7, 64, 1024, 1 << 20} {
			label := fmt.Sprintf("shards=%d block=%d", shards, blockBytes)
			got, errs, err := collectStream(t, data, StreamConfig{Shards: shards, BlockBytes: blockBytes})
			if err != nil || len(errs) != 0 {
				t.Fatalf("%s: errs=%v err=%v", label, errs, err)
			}
			sameDatasets(t, label, got, want)
		}
	}
}

// TestStreamNTriplesOddInputs mirrors the parallel-ingest edge cases on the
// streaming path.
func TestStreamNTriplesOddInputs(t *testing.T) {
	inputs := []string{
		"",
		"\n\n\n",
		"# only a comment\n",
		"<a> <b> <c> .", // no trailing newline
		"<a> <b> <c> .\r\n<a> <b> \"x\"@en .\r\n",
		"<a> <b> \"v\\\"q\"^^<t> .\n_:b1 <p> _:b2 .\n",
		strings.Repeat("<s> <p> <o> .\n", 100),
	}
	for _, in := range inputs {
		want, err := ReadNTriples(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%q: sequential: %v", in, err)
		}
		for _, cfg := range []StreamConfig{{}, {Shards: 4, BlockBytes: 5}, {Shards: 2, BlockBytes: 37}} {
			got, _, err := collectStream(t, []byte(in), cfg)
			if err != nil {
				t.Fatalf("%q cfg=%+v: %v", in, cfg, err)
			}
			sameDatasets(t, fmt.Sprintf("%q cfg=%+v", in, cfg), got, want)
		}
	}
}

// TestStreamNTriplesStrictError: strict streaming reports the document's
// first malformed line regardless of shard or block geometry.
func TestStreamNTriplesStrictError(t *testing.T) {
	in := []byte("<a> <b> <c> .\nbroken line\n<d> <e> <f> .\nalso broken\n")
	for _, cfg := range []StreamConfig{{}, {Shards: 4, BlockBytes: 8}} {
		_, _, err := collectStream(t, in, cfg)
		serr, ok := err.(*SyntaxError)
		if !ok {
			t.Fatalf("cfg=%+v: error %v (%T), want *SyntaxError", cfg, err, err)
		}
		if serr.Line != 2 {
			t.Errorf("cfg=%+v: first error at line %d, want 2", cfg, serr.Line)
		}
	}
}

// TestStreamNTriplesLenientParity: lenient streaming reports the same
// skipped lines as the slurp lenient reader, and over the cap gives up with
// the identical error message.
func TestStreamNTriplesLenientParity(t *testing.T) {
	in := []byte("<a> <b> <c> .\nbad 1\n<d> <e> <f> .\nbad 2\nbad 3\n<g> <h> <i> .\n")
	wantDS, wantErrs, err := ReadNTriplesLenient(bytes.NewReader(in), 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []StreamConfig{
		{Lenient: true, MaxErrors: 10},
		{Lenient: true, MaxErrors: 10, Shards: 3, BlockBytes: 6},
	} {
		ds, errs, err := collectStream(t, in, cfg)
		if err != nil {
			t.Fatalf("cfg=%+v: %v", cfg, err)
		}
		sameDatasets(t, fmt.Sprintf("lenient cfg=%+v", cfg), ds, wantDS)
		if len(errs) != len(wantErrs) {
			t.Fatalf("cfg=%+v: %d syntax errors, want %d", cfg, len(errs), len(wantErrs))
		}
		for i := range wantErrs {
			if errs[i].Line != wantErrs[i].Line {
				t.Errorf("cfg=%+v: error %d at line %d, want %d", cfg, i, errs[i].Line, wantErrs[i].Line)
			}
		}
	}

	_, _, seqErr := ReadNTriplesLenient(bytes.NewReader(in), 2)
	for _, cfg := range []StreamConfig{
		{Lenient: true, MaxErrors: 2},
		{Lenient: true, MaxErrors: 2, Shards: 4, BlockBytes: 4},
	} {
		_, _, err := collectStream(t, in, cfg)
		if err == nil || err.Error() != seqErr.Error() {
			t.Errorf("cfg=%+v: over-cap error %v, want %v", cfg, err, seqErr)
		}
	}
}

// TestStreamNTriplesEmitStop: a non-nil error from emit stops the stream
// and is returned unchanged.
func TestStreamNTriplesEmitStop(t *testing.T) {
	in := bytes.Repeat([]byte("<s> <p> <o> .\n"), 1000)
	stop := fmt.Errorf("enough")
	blocks := 0
	err := StreamNTriples(bytes.NewReader(in), StreamConfig{BlockBytes: 64}, func(*TermBlock) error {
		blocks++
		if blocks == 3 {
			return stop
		}
		return nil
	})
	if err != stop {
		t.Fatalf("err = %v, want %v", err, stop)
	}
	if blocks != 3 {
		t.Fatalf("emit called %d times after stop, want 3", blocks)
	}
}

// TestStreamNTriplesBlockBytes: the per-block input-byte accounting sums to
// the document length.
func TestStreamNTriplesBlockBytes(t *testing.T) {
	in := bytes.Repeat([]byte("<s> <p> <o> .\n"), 500)
	total := 0
	err := StreamNTriples(bytes.NewReader(in), StreamConfig{Shards: 3, BlockBytes: 100}, func(blk *TermBlock) error {
		total += blk.Bytes
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if total != len(in) {
		t.Fatalf("block bytes sum to %d, want %d", total, len(in))
	}
}

// turtleStreamDoc exercises every supported construct: directives, 'a',
// predicate and object lists, blank nodes, literals with language tags and
// datatypes, bare numerics and booleans, comments, and SPARQL-style
// directives.
const turtleStreamDoc = `
@prefix ex: <http://example.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
PREFIX foaf: <http://xmlns.com/foaf/0.1/>
@base <http://base.org/> .

# a comment between statements
ex:patrick a ex:GradStudent ;
    ex:memberOf ex:csd , ex:lab ;
    foaf:name "Patrick" ;
    ex:label "hallo"@de-AT ;
    ex:height "1.86"^^xsd:decimal ;
    ex:weight 72.5 ;
    ex:age 27 ;
    ex:active true .
_:b1 ex:knows _:b2 .
<relative> ex:seeAlso <#frag> .
ex:last ex:prop "v" .
`

// TestStreamTurtleParity: the windowed incremental parser produces exactly
// the statements of the slurp parser at any window size, including windows
// small enough to force a refill-and-retry inside nearly every statement.
func TestStreamTurtleParity(t *testing.T) {
	want, err := ReadTurtle(strings.NewReader(turtleStreamDoc))
	if err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{16, 23, 64, 256, 64 << 10} {
		for _, blockTriples := range []int{1, 3, 4096} {
			got := NewDataset()
			var remap []Value
			err := streamTurtle(strings.NewReader(turtleStreamDoc), window, blockTriples, func(blk *TermBlock) error {
				remap = got.AppendBlock(blk, remap)
				return nil
			})
			label := fmt.Sprintf("window=%d block=%d", window, blockTriples)
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			sameDatasets(t, label, got, want)
		}
	}
}

// TestStreamTurtleLargeStatementGrowsWindow: a statement longer than the
// window parses by transiently growing it.
func TestStreamTurtleLargeStatementGrowsWindow(t *testing.T) {
	long := strings.Repeat("x", 4096)
	doc := "@prefix ex: <http://e.org/> .\nex:s ex:p \"" + long + "\" .\n"
	want, err := ReadTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	got := NewDataset()
	var remap []Value
	if err := streamTurtle(strings.NewReader(doc), 32, 4096, func(blk *TermBlock) error {
		remap = got.AppendBlock(blk, remap)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	sameDatasets(t, "long literal", got, want)
}

// TestStreamTurtleErrors: real syntax errors still surface (with their line
// numbers) rather than being mistaken for window truncation.
func TestStreamTurtleErrors(t *testing.T) {
	cases := []string{
		"@prefix ex: <http://e.org/> .\nex:s ex:p ex:o ,, .\n",
		"ex:s ex:p ex:o .\n", // undeclared prefix
		"@prefix ex: <http://e.org/> .\nex:s ex:p [ ex:q ex:r ] .\n",
	}
	for _, doc := range cases {
		_, wantErr := ReadTurtle(strings.NewReader(doc))
		if wantErr == nil {
			t.Fatalf("%q: slurp parser accepted it", doc)
		}
		for _, window := range []int{16, 64 << 10} {
			err := streamTurtle(strings.NewReader(doc), window, 4096, func(*TermBlock) error { return nil })
			if err == nil || err.Error() != wantErr.Error() {
				t.Errorf("%q window=%d: err %v, want %v", doc, window, err, wantErr)
			}
		}
	}
}

// TestStreamTurtleBlockBytes: per-block byte accounting covers the document.
func TestStreamTurtleBlockBytes(t *testing.T) {
	total := 0
	err := streamTurtle(strings.NewReader(turtleStreamDoc), 64, 2, func(blk *TermBlock) error {
		total += blk.Bytes
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Trailing whitespace after the last statement is not attributed to any
	// block, so the sum covers the document up to the final '.'.
	if last := strings.LastIndexByte(turtleStreamDoc, '.'); total < last+1 || total > len(turtleStreamDoc) {
		t.Fatalf("block bytes sum to %d, want within [%d, %d]", total, last+1, len(turtleStreamDoc))
	}
}
