package rdf

import (
	"fmt"
	"strings"
)

// TermKind classifies an RDF term.
type TermKind int

const (
	// IRI is a resource identifier, serialized as <...>.
	IRI TermKind = iota
	// Literal is a (possibly typed or language-tagged) value.
	Literal
	// BlankNode is a local node identifier (_:label). The discovery
	// algorithms treat blank nodes like IRIs, as the paper does (§2).
	BlankNode
)

// Term is the structured view of one RDF term. The dictionary stores terms
// in surface form; Term gives typed access when callers need to distinguish
// literals from resources, inspect datatypes, or strip quoting.
type Term struct {
	Kind TermKind
	// Value is the IRI (without angle brackets), the blank-node label
	// (without "_:"), or the literal's lexical form (unescaped).
	Value string
	// Datatype is the literal's datatype IRI, empty otherwise.
	Datatype string
	// Lang is the literal's language tag, empty otherwise.
	Lang string
}

// ParseTerm interprets an N-Triples surface form. Bare tokens without term
// syntax (as produced by programmatically built datasets) parse as IRIs.
func ParseTerm(s string) (Term, error) {
	if s == "" {
		return Term{}, fmt.Errorf("rdf: empty term")
	}
	switch {
	case s[0] == '<':
		if !strings.HasSuffix(s, ">") {
			return Term{}, fmt.Errorf("rdf: unterminated IRI %q", s)
		}
		return Term{Kind: IRI, Value: s[1 : len(s)-1]}, nil
	case strings.HasPrefix(s, "_:"):
		if len(s) == 2 {
			return Term{}, fmt.Errorf("rdf: blank node without label")
		}
		return Term{Kind: BlankNode, Value: s[2:]}, nil
	case s[0] == '"':
		end := closingQuote(s)
		if end < 0 {
			return Term{}, fmt.Errorf("rdf: unterminated literal %q", s)
		}
		t := Term{Kind: Literal, Value: unescapeLiteral(s[1:end])}
		rest := s[end+1:]
		switch {
		case rest == "":
		case strings.HasPrefix(rest, "^^<") && strings.HasSuffix(rest, ">"):
			t.Datatype = rest[3 : len(rest)-1]
		case strings.HasPrefix(rest, "@") && len(rest) > 1:
			t.Lang = rest[1:]
		default:
			return Term{}, fmt.Errorf("rdf: malformed literal suffix %q", rest)
		}
		return t, nil
	default:
		// Bare token: treat as IRI, matching WriteNTriples' wrapping rule.
		return Term{Kind: IRI, Value: s}, nil
	}
}

// String renders the term in N-Triples surface form.
func (t Term) String() string {
	switch t.Kind {
	case BlankNode:
		return "_:" + t.Value
	case Literal:
		s := `"` + escapeLiteral(t.Value) + `"`
		if t.Datatype != "" {
			return s + "^^<" + t.Datatype + ">"
		}
		if t.Lang != "" {
			return s + "@" + t.Lang
		}
		return s
	default:
		return "<" + t.Value + ">"
	}
}

// IsResource reports whether the term can appear in subject position.
func (t Term) IsResource() bool { return t.Kind != Literal }

// escapeLiteral applies the N-Triples string escapes.
func escapeLiteral(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// unescapeLiteral reverses escapeLiteral (and tolerates unknown escapes by
// keeping them verbatim).
func unescapeLiteral(s string) string {
	if !strings.ContainsRune(s, '\\') {
		return s
	}
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' || i+1 == len(s) {
			b.WriteByte(s[i])
			continue
		}
		i++
		switch s[i] {
		case 'n':
			b.WriteByte('\n')
		case 'r':
			b.WriteByte('\r')
		case 't':
			b.WriteByte('\t')
		case '"', '\\':
			b.WriteByte(s[i])
		default:
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
