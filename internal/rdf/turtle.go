package rdf

import (
	"fmt"
	"io"
	"strings"
	"unicode"
)

// This file implements a reader for the Turtle subset commonly found in
// Linked Open Data dumps (the corpora RDFind targets): @prefix and @base
// directives, prefixed names, the "a" keyword, predicate lists (";"),
// object lists (","), blank-node labels, quoted literals with datatype or
// language tags, and bare numeric/boolean literals. Collections and
// anonymous blank-node property lists ("[...]", "(...)") are not supported
// and yield a descriptive error.

// xsd datatype IRIs for bare literal tokens.
const (
	xsdInteger = "http://www.w3.org/2001/XMLSchema#integer"
	xsdDecimal = "http://www.w3.org/2001/XMLSchema#decimal"
	xsdBoolean = "http://www.w3.org/2001/XMLSchema#boolean"
	rdfType    = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
)

// ReadTurtle parses a Turtle document into a dataset. Terms are stored in
// their N-Triples surface form, so datasets read from Turtle and from
// N-Triples are interchangeable. The input is decoded as a bounded-window
// stream (see StreamTurtle); only the dataset itself is materialized.
func ReadTurtle(r io.Reader) (*Dataset, error) {
	ds := NewDataset()
	var remap []Value
	err := StreamTurtle(r, StreamConfig{}, func(blk *TermBlock) error {
		remap = ds.AppendBlock(blk, remap)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

// stmtTriple is one parsed statement's worth of output, buffered on the
// parser so a statement interrupted by the end of the streaming window can
// be retried after a refill without emitting its triples twice.
type stmtTriple struct {
	s, p, o string
}

type turtleParser struct {
	pending  []stmtTriple // triples of statements not yet committed
	prefixes map[string]string
	base     string
	input    string
	pos      int
	line     int
	// final reports that input ends the document: nothing follows the
	// window, so constructs that would otherwise wait for more bytes (a
	// comment without its newline yet) can be consumed to the end.
	final bool
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

// skipWS advances over whitespace and comments.
func (p *turtleParser) skipWS() {
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			nl := strings.IndexByte(p.input[p.pos:], '\n')
			if nl < 0 {
				// The comment may continue past a non-final window edge;
				// leave it for the caller to refill rather than consuming a
				// truncated prefix the statement retry could not restore.
				if !p.final {
					return
				}
				p.pos = len(p.input)
				return
			}
			p.pos += nl
		default:
			return
		}
	}
}

func (p *turtleParser) eof() bool {
	p.skipWS()
	return p.pos >= len(p.input)
}

// expect consumes one literal byte.
func (p *turtleParser) expect(c byte) error {
	p.skipWS()
	if p.pos >= len(p.input) || p.input[p.pos] != c {
		got := "end of input"
		if p.pos < len(p.input) {
			got = fmt.Sprintf("%q", p.input[p.pos])
		}
		return p.errf("expected %q, got %s", c, got)
	}
	p.pos++
	return nil
}

// statement parses a directive or a triples block.
func (p *turtleParser) statement() error {
	p.skipWS()
	if strings.HasPrefix(p.input[p.pos:], "@prefix") || hasPrefixFold(p.input[p.pos:], "PREFIX") {
		return p.prefixDirective()
	}
	if strings.HasPrefix(p.input[p.pos:], "@base") || hasPrefixFold(p.input[p.pos:], "BASE") {
		return p.baseDirective()
	}
	return p.triples()
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}

// prefixDirective parses "@prefix ns: <iri> ." or SPARQL-style "PREFIX".
func (p *turtleParser) prefixDirective() error {
	sparqlStyle := hasPrefixFold(p.input[p.pos:], "PREFIX")
	if sparqlStyle {
		p.pos += len("PREFIX")
	} else {
		p.pos += len("@prefix")
	}
	p.skipWS()
	colon := strings.IndexByte(p.input[p.pos:], ':')
	if colon < 0 {
		return p.errf("prefix directive without ':'")
	}
	ns := strings.TrimSpace(p.input[p.pos : p.pos+colon])
	p.pos += colon + 1
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[ns] = iri
	if !sparqlStyle {
		return p.expect('.')
	}
	return nil
}

// baseDirective parses "@base <iri> ." or SPARQL-style "BASE".
func (p *turtleParser) baseDirective() error {
	sparqlStyle := hasPrefixFold(p.input[p.pos:], "BASE")
	if sparqlStyle {
		p.pos += len("BASE")
	} else {
		p.pos += len("@base")
	}
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	if !sparqlStyle {
		return p.expect('.')
	}
	return nil
}

// triples parses: subject predicateObjectList '.'
func (p *turtleParser) triples() error {
	subj, err := p.resource("subject")
	if err != nil {
		return err
	}
	for {
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			obj, err := p.object()
			if err != nil {
				return err
			}
			p.pending = append(p.pending, stmtTriple{subj, pred, obj})
			p.skipWS()
			if p.pos < len(p.input) && p.input[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skipWS()
		if p.pos < len(p.input) && p.input[p.pos] == ';' {
			p.pos++
			p.skipWS()
			// A trailing ';' before '.' is legal Turtle.
			if p.pos < len(p.input) && p.input[p.pos] == '.' {
				break
			}
			continue
		}
		break
	}
	return p.expect('.')
}

// resource parses an IRI, prefixed name, or blank node label and returns its
// N-Triples surface form.
func (p *turtleParser) resource(role string) (string, error) {
	p.skipWS()
	if p.pos >= len(p.input) {
		return "", p.errf("missing %s", role)
	}
	switch c := p.input[p.pos]; {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return "", err
		}
		return "<" + iri + ">", nil
	case c == '_' && strings.HasPrefix(p.input[p.pos:], "_:"):
		start := p.pos
		p.pos += 2
		for p.pos < len(p.input) && isNameChar(p.input[p.pos]) {
			p.pos++
		}
		return p.input[start:p.pos], nil
	case c == '[':
		return "", p.errf("anonymous blank nodes '[...]' are not supported")
	case c == '(':
		return "", p.errf("collections '(...)' are not supported")
	default:
		return p.prefixedName(role)
	}
}

// predicate parses a verb: 'a' or a resource.
func (p *turtleParser) predicate() (string, error) {
	p.skipWS()
	if strings.HasPrefix(p.input[p.pos:], "a") {
		after := p.pos + 1
		if after >= len(p.input) || !isNameChar(p.input[after]) && p.input[after] != ':' {
			p.pos++
			return "<" + rdfType + ">", nil
		}
	}
	return p.resource("predicate")
}

// object parses a resource or literal.
func (p *turtleParser) object() (string, error) {
	p.skipWS()
	if p.pos >= len(p.input) {
		return "", p.errf("missing object")
	}
	c := p.input[p.pos]
	switch {
	case c == '"':
		return p.literal()
	case c == '+' || c == '-' || c >= '0' && c <= '9':
		return p.numericLiteral()
	case strings.HasPrefix(p.input[p.pos:], "true") || strings.HasPrefix(p.input[p.pos:], "false"):
		start := p.pos
		for p.pos < len(p.input) && unicode.IsLetter(rune(p.input[p.pos])) {
			p.pos++
		}
		return fmt.Sprintf("%q^^<%s>", p.input[start:p.pos], xsdBoolean), nil
	default:
		return p.resource("object")
	}
}

// iriRef parses <...> and resolves it against @base when relative.
func (p *turtleParser) iriRef() (string, error) {
	if err := p.expect('<'); err != nil {
		return "", err
	}
	end := strings.IndexByte(p.input[p.pos:], '>')
	if end < 0 {
		return "", p.errf("unterminated IRI")
	}
	iri := p.input[p.pos : p.pos+end]
	p.pos += end + 1
	if p.base != "" && !strings.Contains(iri, ":") {
		iri = p.base + iri
	}
	return iri, nil
}

// prefixedName parses ns:local and expands the namespace.
func (p *turtleParser) prefixedName(role string) (string, error) {
	start := p.pos
	for p.pos < len(p.input) && isNameChar(p.input[p.pos]) {
		p.pos++
	}
	if p.pos >= len(p.input) || p.input[p.pos] != ':' {
		return "", p.errf("malformed %s at %q", role, excerpt(p.input[start:]))
	}
	ns := p.input[start:p.pos]
	p.pos++
	localStart := p.pos
	for p.pos < len(p.input) && isNameChar(p.input[p.pos]) {
		p.pos++
	}
	local := p.input[localStart:p.pos]
	base, ok := p.prefixes[ns]
	if !ok {
		return "", p.errf("undeclared prefix %q", ns)
	}
	return "<" + base + local + ">", nil
}

// literal parses a quoted string with optional datatype or language tag.
func (p *turtleParser) literal() (string, error) {
	rest := p.input[p.pos:]
	end := closingQuote(rest)
	if end < 0 {
		return "", p.errf("unterminated literal")
	}
	lex := rest[:end+1] // includes both quotes
	p.pos += end + 1
	// Suffix: @lang or ^^iri / ^^prefixed.
	if strings.HasPrefix(p.input[p.pos:], "@") {
		start := p.pos
		p.pos++
		for p.pos < len(p.input) && (isNameChar(p.input[p.pos]) || p.input[p.pos] == '-') {
			p.pos++
		}
		return lex + p.input[start:p.pos], nil
	}
	if strings.HasPrefix(p.input[p.pos:], "^^") {
		p.pos += 2
		dt, err := p.resource("datatype")
		if err != nil {
			return "", err
		}
		return lex + "^^" + dt, nil
	}
	return lex, nil
}

// numericLiteral parses bare integers and decimals.
func (p *turtleParser) numericLiteral() (string, error) {
	start := p.pos
	if c := p.input[p.pos]; c == '+' || c == '-' {
		p.pos++
	}
	dots := 0
	for p.pos < len(p.input) {
		c := p.input[p.pos]
		if c >= '0' && c <= '9' {
			p.pos++
			continue
		}
		if c == '.' && p.pos+1 < len(p.input) && p.input[p.pos+1] >= '0' && p.input[p.pos+1] <= '9' {
			dots++
			p.pos++
			continue
		}
		break
	}
	tok := p.input[start:p.pos]
	if tok == "" || tok == "+" || tok == "-" {
		return "", p.errf("malformed number")
	}
	dt := xsdInteger
	if dots > 0 {
		dt = xsdDecimal
	}
	return fmt.Sprintf("%q^^<%s>", tok, dt), nil
}

func isNameChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' ||
		c == '_' || c == '-'
}

func excerpt(s string) string {
	if len(s) > 20 {
		return s[:20] + "…"
	}
	return s
}
