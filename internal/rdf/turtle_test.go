package rdf

import (
	"strings"
	"testing"
)

func term(t *testing.T, ds *Dataset, tr Triple, a Attr) string {
	t.Helper()
	return ds.Dict.Decode(tr.Get(a))
}

func TestReadTurtleBasics(t *testing.T) {
	doc := `
@prefix ex: <http://example.org/> .
@prefix rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#> .

ex:patrick rdf:type ex:gradStudent .
ex:patrick ex:memberOf ex:csd .
`
	ds, err := ReadTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Size() != 2 {
		t.Fatalf("Size = %d, want 2", ds.Size())
	}
	if got := term(t, ds, ds.Triples[0], Subject); got != "<http://example.org/patrick>" {
		t.Errorf("subject = %q", got)
	}
	if got := term(t, ds, ds.Triples[0], Predicate); got != "<http://www.w3.org/1999/02/22-rdf-syntax-ns#type>" {
		t.Errorf("predicate = %q", got)
	}
}

func TestReadTurtleAKeywordAndLists(t *testing.T) {
	doc := `
@prefix ex: <http://ex.org/> .
ex:patrick a ex:GradStudent ;
    ex:memberOf ex:csd , ex:lab ;
    ex:age 27 .
`
	ds, err := ReadTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Size() != 4 {
		t.Fatalf("Size = %d, want 4 (a + two memberOf + age)", ds.Size())
	}
	if got := term(t, ds, ds.Triples[0], Predicate); got != "<"+rdfType+">" {
		t.Errorf("'a' expanded to %q", got)
	}
	// Object list: two memberOf triples with the same predicate.
	n := 0
	for _, tr := range ds.Triples {
		if term(t, ds, tr, Predicate) == "<http://ex.org/memberOf>" {
			n++
		}
	}
	if n != 2 {
		t.Errorf("object list produced %d memberOf triples, want 2", n)
	}
	// Bare integer became a typed literal.
	last := ds.Triples[3]
	if got := term(t, ds, last, Object); got != `"27"^^<`+xsdInteger+`>` {
		t.Errorf("bare integer = %q", got)
	}
}

func TestReadTurtleLiterals(t *testing.T) {
	doc := `
@prefix ex: <http://ex.org/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
ex:a ex:name "Patrick" .
ex:a ex:label "hallo"@de .
ex:a ex:height "1.86"^^xsd:decimal .
ex:a ex:weight 72.5 .
ex:a ex:active true .
`
	ds, err := ReadTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		`"Patrick"`,
		`"hallo"@de`,
		`"1.86"^^<http://www.w3.org/2001/XMLSchema#decimal>`,
		`"72.5"^^<` + xsdDecimal + `>`,
		`"true"^^<` + xsdBoolean + `>`,
	}
	for i, w := range want {
		if got := term(t, ds, ds.Triples[i], Object); got != w {
			t.Errorf("object %d = %q, want %q", i, got, w)
		}
	}
}

func TestReadTurtleBlankNodesAndBase(t *testing.T) {
	doc := `
@base <http://base.org/> .
@prefix ex: <http://ex.org/> .
_:b1 ex:linksTo <relative> .
<relative> ex:linksTo _:b1 .
`
	ds, err := ReadTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := term(t, ds, ds.Triples[0], Subject); got != "_:b1" {
		t.Errorf("blank node = %q", got)
	}
	if got := term(t, ds, ds.Triples[0], Object); got != "<http://base.org/relative>" {
		t.Errorf("base resolution = %q", got)
	}
}

func TestReadTurtleSparqlStyleDirectives(t *testing.T) {
	doc := `
PREFIX ex: <http://ex.org/>
BASE <http://base.org/>
ex:a ex:p <rel> .
`
	ds, err := ReadTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := term(t, ds, ds.Triples[0], Object); got != "<http://base.org/rel>" {
		t.Errorf("object = %q", got)
	}
}

func TestReadTurtleInteroperatesWithNTriples(t *testing.T) {
	// A dataset read from Turtle must serialize to N-Triples and re-parse.
	doc := `
@prefix ex: <http://ex.org/> .
ex:s ex:p ex:o ; ex:q "lit"@en .
`
	ds, err := ReadTurtle(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteNTriples(&b, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNTriples(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, b.String())
	}
	if back.Size() != ds.Size() {
		t.Errorf("round trip changed size: %d -> %d", ds.Size(), back.Size())
	}
}

func TestReadTurtleErrors(t *testing.T) {
	bad := map[string]string{
		"undeclared prefix":  `ex:a ex:p ex:o .`,
		"missing dot":        "@prefix ex: <http://e/> .\nex:a ex:p ex:o",
		"anon blank node":    "@prefix ex: <http://e/> .\nex:a ex:p [ ex:q ex:o ] .",
		"collection":         "@prefix ex: <http://e/> .\nex:a ex:p (1 2) .",
		"unterminated IRI":   `<http://e ex:p ex:o .`,
		"unterminated lit":   "@prefix ex: <http://e/> .\nex:a ex:p \"open .",
		"bad number":         "@prefix ex: <http://e/> .\nex:a ex:p + .",
		"prefix without IRI": `@prefix ex: nope .`,
	}
	for name, doc := range bad {
		if _, err := ReadTurtle(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: no error for %q", name, doc)
		}
	}
}

func TestParseTermKinds(t *testing.T) {
	cases := []struct {
		in   string
		want Term
	}{
		{"<http://e/x>", Term{Kind: IRI, Value: "http://e/x"}},
		{"bare", Term{Kind: IRI, Value: "bare"}},
		{"_:b7", Term{Kind: BlankNode, Value: "b7"}},
		{`"hi"`, Term{Kind: Literal, Value: "hi"}},
		{`"hi"@en`, Term{Kind: Literal, Value: "hi", Lang: "en"}},
		{`"5"^^<http://www.w3.org/2001/XMLSchema#int>`, Term{Kind: Literal, Value: "5", Datatype: "http://www.w3.org/2001/XMLSchema#int"}},
		{`"a \"b\" c"`, Term{Kind: Literal, Value: `a "b" c`}},
	}
	for _, c := range cases {
		got, err := ParseTerm(c.in)
		if err != nil {
			t.Errorf("ParseTerm(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTerm(%q) = %+v, want %+v", c.in, got, c.want)
		}
		if c.in != "bare" {
			if rt := got.String(); rt != c.in {
				t.Errorf("round trip of %q gave %q", c.in, rt)
			}
		}
	}
}

func TestParseTermErrors(t *testing.T) {
	for _, in := range []string{"", "<open", "_:", `"open`, `"x"^^bad`, `"x"@`} {
		if _, err := ParseTerm(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestTermIsResource(t *testing.T) {
	iri, _ := ParseTerm("<http://e/x>")
	lit, _ := ParseTerm(`"x"`)
	blank, _ := ParseTerm("_:b")
	if !iri.IsResource() || lit.IsResource() || !blank.IsResource() {
		t.Errorf("IsResource misclassifies")
	}
}

func TestLiteralEscapingRoundTrip(t *testing.T) {
	tricky := Term{Kind: Literal, Value: "line\nbreak\t\"quote\" back\\slash"}
	parsed, err := ParseTerm(tricky.String())
	if err != nil {
		t.Fatal(err)
	}
	if parsed != tricky {
		t.Errorf("escape round trip: %+v -> %+v", tricky, parsed)
	}
}
