// Package reldb is a small in-memory relational engine that stands in for
// the MySQL/PostgreSQL instances the Cinderella baseline ran on in the
// paper's Fig. 7 experiment. It provides tables over dictionary-encoded
// values, selection/projection, grouped aggregation, and — the operation
// Cinderella is built on — left outer joins in two physical flavors: a hash
// join (the PostgreSQL stand-in) and a sort-merge join (the MySQL stand-in).
//
// The engine enforces an optional row budget so that experiments can
// reproduce the baseline's memory-exhaustion failures: when a materialized
// result exceeds the budget, the operation fails with ErrOutOfMemory, the
// analogue of the aborted Cinderella runs (hollow bars in Fig. 7).
package reldb

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rdf"
)

// ErrOutOfMemory reports that an operator exceeded the configured row
// budget, emulating a database run that exhausts its memory grant.
var ErrOutOfMemory = errors.New("reldb: row budget exhausted")

// JoinAlgorithm selects the physical join operator.
type JoinAlgorithm int

const (
	// HashJoin builds a hash table on the right input (PostgreSQL stand-in).
	HashJoin JoinAlgorithm = iota
	// SortMergeJoin sorts both inputs and merges (MySQL stand-in).
	SortMergeJoin
)

// String names the algorithm after the DBMS it emulates.
func (a JoinAlgorithm) String() string {
	if a == SortMergeJoin {
		return "my"
	}
	return "pg"
}

// Row is one tuple of dictionary-encoded values.
type Row []rdf.Value

// Table is a named relation with a fixed schema.
type Table struct {
	Name string
	Cols []string
	Rows []Row
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, cols ...string) *Table {
	return &Table{Name: name, Cols: cols}
}

// ColIndex returns the position of a column, or -1.
func (t *Table) ColIndex(name string) int {
	for i, c := range t.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// Insert appends a row; the arity must match the schema.
func (t *Table) Insert(vals ...rdf.Value) {
	if len(vals) != len(t.Cols) {
		panic(fmt.Sprintf("reldb: inserting %d values into %d columns", len(vals), len(t.Cols)))
	}
	t.Rows = append(t.Rows, Row(vals))
}

// Len returns the row count.
func (t *Table) Len() int { return len(t.Rows) }

// Select returns the rows satisfying pred as a new table.
func (t *Table) Select(pred func(Row) bool) *Table {
	out := &Table{Name: t.Name, Cols: t.Cols}
	for _, r := range t.Rows {
		if pred(r) {
			out.Rows = append(out.Rows, r)
		}
	}
	return out
}

// Project returns a table with only the named columns.
func (t *Table) Project(cols ...string) *Table {
	idx := make([]int, len(cols))
	for i, c := range cols {
		idx[i] = t.ColIndex(c)
		if idx[i] < 0 {
			panic("reldb: unknown column " + c)
		}
	}
	out := &Table{Name: t.Name, Cols: cols}
	for _, r := range t.Rows {
		nr := make(Row, len(idx))
		for i, j := range idx {
			nr[i] = r[j]
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// DistinctValues returns the set of values in one column.
func (t *Table) DistinctValues(col string) map[rdf.Value]struct{} {
	i := t.ColIndex(col)
	out := make(map[rdf.Value]struct{})
	for _, r := range t.Rows {
		out[r[i]] = struct{}{}
	}
	return out
}

// JoinedRow is one output tuple of a left outer join: the left row plus a
// flag telling whether a right-side partner existed (false means the right
// side was NULL-padded).
type JoinedRow struct {
	Left    Row
	Matched bool
}

// LeftOuterJoin joins the left table's leftCol against the right table's
// rightCol, returning one output row per left row and right match (and one
// NULL-padded row for unmatched left rows). The budget caps the number of
// materialized output rows; 0 means unlimited.
func LeftOuterJoin(left, right *Table, leftCol, rightCol string, algo JoinAlgorithm, budget int) ([]JoinedRow, error) {
	li := left.ColIndex(leftCol)
	ri := right.ColIndex(rightCol)
	if li < 0 || ri < 0 {
		panic("reldb: unknown join column")
	}
	switch algo {
	case SortMergeJoin:
		return sortMergeLOJ(left, right, li, ri, budget)
	default:
		return hashLOJ(left, right, li, ri, budget)
	}
}

func hashLOJ(left, right *Table, li, ri, budget int) ([]JoinedRow, error) {
	matches := make(map[rdf.Value]int)
	for _, r := range right.Rows {
		matches[r[ri]]++
	}
	var out []JoinedRow
	for _, l := range left.Rows {
		n := matches[l[li]]
		if n == 0 {
			out = append(out, JoinedRow{Left: l, Matched: false})
		} else {
			for k := 0; k < n; k++ {
				out = append(out, JoinedRow{Left: l, Matched: true})
			}
		}
		if budget > 0 && len(out) > budget {
			return nil, fmt.Errorf("%w: hash join produced more than %d rows", ErrOutOfMemory, budget)
		}
	}
	return out, nil
}

func sortMergeLOJ(left, right *Table, li, ri, budget int) ([]JoinedRow, error) {
	ls := make([]Row, len(left.Rows))
	copy(ls, left.Rows)
	sort.Slice(ls, func(i, j int) bool { return ls[i][li] < ls[j][li] })
	rs := make([]rdf.Value, 0, len(right.Rows))
	for _, r := range right.Rows {
		rs = append(rs, r[ri])
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })

	var out []JoinedRow
	j := 0
	for _, l := range ls {
		v := l[li]
		for j < len(rs) && rs[j] < v {
			j++
		}
		k := j
		matched := false
		for k < len(rs) && rs[k] == v {
			out = append(out, JoinedRow{Left: l, Matched: true})
			matched = true
			k++
		}
		if !matched {
			out = append(out, JoinedRow{Left: l, Matched: false})
		}
		if budget > 0 && len(out) > budget {
			return nil, fmt.Errorf("%w: sort-merge join produced more than %d rows", ErrOutOfMemory, budget)
		}
	}
	return out, nil
}

// StreamFullLeftOuterJoin produces the same output rows as LeftOuterJoin —
// one per (left row, right match) pair, multiplicities included — but feeds
// them to a sink instead of materializing them, the way a DBMS pipelines or
// spills a join. Time still scales with the true join size and with the
// chosen physical operator.
func StreamFullLeftOuterJoin(left, right *Table, leftCol, rightCol string, algo JoinAlgorithm, sink func(Row, bool)) {
	li := left.ColIndex(leftCol)
	ri := right.ColIndex(rightCol)
	if li < 0 || ri < 0 {
		panic("reldb: unknown join column")
	}
	if algo == SortMergeJoin {
		ls := make([]Row, len(left.Rows))
		copy(ls, left.Rows)
		sort.Slice(ls, func(i, j int) bool { return ls[i][li] < ls[j][li] })
		rs := make([]rdf.Value, 0, len(right.Rows))
		for _, r := range right.Rows {
			rs = append(rs, r[ri])
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		j := 0
		for _, l := range ls {
			v := l[li]
			for j < len(rs) && rs[j] < v {
				j++
			}
			matched := false
			for k := j; k < len(rs) && rs[k] == v; k++ {
				sink(l, true)
				matched = true
			}
			if !matched {
				sink(l, false)
			}
		}
		return
	}
	matches := make(map[rdf.Value]int, len(right.Rows))
	for _, r := range right.Rows {
		matches[r[ri]]++
	}
	for _, l := range left.Rows {
		n := matches[l[li]]
		if n == 0 {
			sink(l, false)
			continue
		}
		for k := 0; k < n; k++ {
			sink(l, true)
		}
	}
}

// StreamLeftOuterJoin performs the same join without materializing the
// output: each (left row, matched) pair is passed to the sink. It backs the
// memory-optimized Cinderella* variant.
func StreamLeftOuterJoin(left, right *Table, leftCol, rightCol string, sink func(Row, bool)) {
	li := left.ColIndex(leftCol)
	ri := right.ColIndex(rightCol)
	if li < 0 || ri < 0 {
		panic("reldb: unknown join column")
	}
	exists := make(map[rdf.Value]struct{}, len(right.Rows))
	for _, r := range right.Rows {
		exists[r[ri]] = struct{}{}
	}
	for _, l := range left.Rows {
		_, ok := exists[l[li]]
		sink(l, ok)
	}
}

// GroupCount aggregates rows by a key column, counting rows per key.
func (t *Table) GroupCount(col string) map[rdf.Value]int {
	i := t.ColIndex(col)
	out := make(map[rdf.Value]int)
	for _, r := range t.Rows {
		out[r[i]]++
	}
	return out
}
