package reldb

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/rdf"
)

func sample() (*Table, *Table) {
	left := NewTable("l", "a", "b")
	left.Insert(1, 10)
	left.Insert(2, 20)
	left.Insert(2, 21)
	left.Insert(3, 30)
	right := NewTable("r", "x")
	right.Insert(2)
	right.Insert(2)
	right.Insert(3)
	right.Insert(9)
	return left, right
}

func TestColIndexAndInsert(t *testing.T) {
	tb := NewTable("t", "s", "p", "o")
	if tb.ColIndex("p") != 1 || tb.ColIndex("missing") != -1 {
		t.Errorf("ColIndex wrong")
	}
	tb.Insert(1, 2, 3)
	if tb.Len() != 1 {
		t.Errorf("Len = %d", tb.Len())
	}
	defer func() {
		if recover() == nil {
			t.Errorf("no panic on arity mismatch")
		}
	}()
	tb.Insert(1, 2)
}

func TestSelectProject(t *testing.T) {
	left, _ := sample()
	sel := left.Select(func(r Row) bool { return r[0] == 2 })
	if sel.Len() != 2 {
		t.Errorf("Select kept %d rows, want 2", sel.Len())
	}
	proj := left.Project("b")
	if len(proj.Cols) != 1 || proj.Rows[0][0] != 10 {
		t.Errorf("Project wrong: %+v", proj)
	}
}

func TestDistinctValuesAndGroupCount(t *testing.T) {
	left, _ := sample()
	dv := left.DistinctValues("a")
	if len(dv) != 3 {
		t.Errorf("DistinctValues = %d, want 3", len(dv))
	}
	gc := left.GroupCount("a")
	if gc[2] != 2 || gc[1] != 1 {
		t.Errorf("GroupCount = %v", gc)
	}
}

// bothJoins runs a join with each algorithm and checks they agree.
func bothJoins(t *testing.T, left, right *Table, lc, rc string) []JoinedRow {
	t.Helper()
	h, err := LeftOuterJoin(left, right, lc, rc, HashJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := LeftOuterJoin(left, right, lc, rc, SortMergeJoin, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != len(s) {
		t.Fatalf("hash join %d rows, sort-merge %d rows", len(h), len(s))
	}
	count := func(rows []JoinedRow) map[rdf.Value][2]int {
		m := map[rdf.Value][2]int{}
		for _, r := range rows {
			c := m[r.Left[0]]
			if r.Matched {
				c[0]++
			} else {
				c[1]++
			}
			m[r.Left[0]] = c
		}
		return m
	}
	hm, sm := count(h), count(s)
	for k, v := range hm {
		if sm[k] != v {
			t.Fatalf("join algorithms disagree for key %v: %v vs %v", k, v, sm[k])
		}
	}
	return h
}

func TestLeftOuterJoinSemantics(t *testing.T) {
	left, right := sample()
	rows := bothJoins(t, left, right, "a", "x")
	// a=1: no match (1 row, unmatched); a=2: two right matches each (2 left
	// rows × 2 = 4 matched); a=3: 1 matched. Total 6.
	if len(rows) != 6 {
		t.Fatalf("join produced %d rows, want 6", len(rows))
	}
	matched, unmatched := 0, 0
	for _, r := range rows {
		if r.Matched {
			matched++
		} else {
			unmatched++
		}
	}
	if matched != 5 || unmatched != 1 {
		t.Errorf("matched=%d unmatched=%d, want 5/1", matched, unmatched)
	}
}

func TestJoinBudget(t *testing.T) {
	left, right := sample()
	for _, algo := range []JoinAlgorithm{HashJoin, SortMergeJoin} {
		_, err := LeftOuterJoin(left, right, "a", "x", algo, 3)
		if !errors.Is(err, ErrOutOfMemory) {
			t.Errorf("%v: budget 3 not enforced, err=%v", algo, err)
		}
	}
}

func TestStreamLeftOuterJoin(t *testing.T) {
	left, right := sample()
	var matched, unmatched int
	StreamLeftOuterJoin(left, right, "a", "x", func(r Row, ok bool) {
		if ok {
			matched++
		} else {
			unmatched++
		}
	})
	// Streaming emits one row per left row (semi-join style).
	if matched != 3 || unmatched != 1 {
		t.Errorf("stream join matched=%d unmatched=%d, want 3/1", matched, unmatched)
	}
}

func TestJoinAlgorithmString(t *testing.T) {
	if HashJoin.String() != "pg" || SortMergeJoin.String() != "my" {
		t.Errorf("algorithm names wrong: %s %s", HashJoin, SortMergeJoin)
	}
}

// Property: both join algorithms produce identical matched/unmatched
// multiplicity per key, for random inputs.
func TestQuickJoinEquivalence(t *testing.T) {
	f := func(ls, rs []uint8) bool {
		left := NewTable("l", "a")
		for _, v := range ls {
			left.Insert(rdf.Value(v % 16))
		}
		right := NewTable("r", "x")
		for _, v := range rs {
			right.Insert(rdf.Value(v % 16))
		}
		h, err1 := LeftOuterJoin(left, right, "a", "x", HashJoin, 0)
		s, err2 := LeftOuterJoin(left, right, "a", "x", SortMergeJoin, 0)
		if err1 != nil || err2 != nil || len(h) != len(s) {
			return err1 == nil && err2 == nil && len(h) == len(s)
		}
		hm := map[[2]interface{}]int{}
		sm := map[[2]interface{}]int{}
		for _, r := range h {
			hm[[2]interface{}{r.Left[0], r.Matched}]++
		}
		for _, r := range s {
			sm[[2]interface{}{r.Left[0], r.Matched}]++
		}
		if len(hm) != len(sm) {
			return false
		}
		for k, v := range hm {
			if sm[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
