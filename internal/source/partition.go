package source

import (
	"encoding/binary"
	"fmt"

	"repro/internal/rdf"
)

// Partitioner decides which worker partition owns a triple as blocks arrive
// from the stream. Place must be a pure function of the triple's global
// dictionary IDs and the worker count: every process in a cluster places
// independently and the placements must agree. Placement never changes the
// pipeline's output — the differential suites pin byte-identical results
// across partitioners — only how evenly ingest spreads and how many bytes
// later shuffles move.
type Partitioner interface {
	Name() string
	Place(t rdf.Triple, workers int) int
}

// ByName resolves a partitioner from its CLI name.
func ByName(name string) (Partitioner, error) {
	switch name {
	case "", "hash":
		return HashPartitioner{}, nil
	case "subject":
		return SubjectPartitioner{}, nil
	default:
		return nil, fmt.Errorf(`source: unknown partitioner %q (want "hash" or "subject")`, name)
	}
}

// HashPartitioner spreads triples by an FNV-1a hash of the whole encoded
// triple (uvarint subject, predicate, object IDs — the same byte form the
// wire layer ships), optimizing for load balance.
type HashPartitioner struct{}

func (HashPartitioner) Name() string { return "hash" }

func (HashPartitioner) Place(t rdf.Triple, workers int) int {
	if workers <= 1 {
		return 0
	}
	var buf [3 * binary.MaxVarintLen32]byte
	n := binary.PutUvarint(buf[:], uint64(t.S))
	n += binary.PutUvarint(buf[n:], uint64(t.P))
	n += binary.PutUvarint(buf[n:], uint64(t.O))
	return int(fnv1a(buf[:n]) % uint64(workers))
}

// SubjectPartitioner co-locates all triples sharing a subject on one
// partition (the subject-locality strategy from the RDF-distribution
// literature): joins and capture groups keyed by subject then need no
// cross-partition movement, at the cost of skew when subjects are hot.
type SubjectPartitioner struct{}

func (SubjectPartitioner) Name() string { return "subject" }

func (SubjectPartitioner) Place(t rdf.Triple, workers int) int {
	if workers <= 1 {
		return 0
	}
	var buf [binary.MaxVarintLen32]byte
	n := binary.PutUvarint(buf[:], uint64(t.S))
	return int(fnv1a(buf[:n]) % uint64(workers))
}

// fnv1a is the 64-bit FNV-1a hash, unseeded: placement must agree across
// processes without any per-run state.
func fnv1a(b []byte) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}
