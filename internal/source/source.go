// Package source is the streaming ingest layer: it turns a set of input
// files — N-Triples or Turtle, plain or gzipped, named directly or by glob —
// into an ordered stream of rdf.TermBlocks without ever materializing an
// input file in memory. The canonical document order of a multi-file spec is
// the sorted, deduplicated expansion of its inputs; a consumer that folds
// the files' blocks in that order builds exactly the dictionary a
// sequential read of the concatenated files would, which is what keeps
// streamed, sharded, and distributed ingest byte-identical (DESIGN.md
// § Streaming ingest).
package source

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/rdf"
)

// Format names for Spec.Format and File.Format.
const (
	FormatAuto   = "auto"
	FormatNT     = "nt"
	FormatTurtle = "turtle"
)

// Sentinel errors a CLI can classify into usage versus runtime failures.
var (
	// ErrLenientTurtle rejects lenient mode on Turtle input: the Turtle
	// parser has no line-oriented recovery, so silently ignoring the flag
	// would misreport what the run did.
	ErrLenientTurtle = errors.New("lenient mode applies to N-Triples input only")
	// ErrNoInput means the spec's inputs matched no files at all.
	ErrNoInput = errors.New("no input files matched")
	// ErrBadFormat rejects an unknown Spec.Format.
	ErrBadFormat = errors.New(`input format must be "auto", "nt", or "turtle"`)
)

// Spec names a set of inputs and how to decode them. The zero value of
// every field except Inputs is usable.
type Spec struct {
	// Inputs are file paths or filepath.Match globs. Their sorted,
	// deduplicated expansion defines the canonical document order.
	Inputs []string
	// Format is the declared input format: FormatAuto resolves per file
	// from its extension (.ttl/.turtle → Turtle, after stripping .gz).
	Format string
	// Lenient skips malformed N-Triples lines instead of failing.
	Lenient bool
	// MaxErrors caps lenient-mode skipped lines per file (<= 0 selects
	// rdf.DefaultMaxParseErrors).
	MaxErrors int
	// Shards is the per-file parallel parse shard count.
	Shards int
	// BlockBytes overrides the N-Triples block granularity (tests).
	BlockBytes int
}

// File is one resolved input: a concrete path plus its decoded format.
type File struct {
	Path   string
	Format string // FormatNT or FormatTurtle, never FormatAuto
}

// Resolved is a validated Spec: the concrete file list in canonical
// document order.
type Resolved struct {
	Files []File
	spec  Spec
}

// Malformed is one skipped input line (lenient mode), attributed to its
// file.
type Malformed struct {
	Path string
	Err  *rdf.SyntaxError
}

func (m Malformed) String() string {
	return fmt.Sprintf("%s: line %d: %v", m.Path, m.Err.Line, m.Err.Err)
}

// InputError marks a failure to open or decode an input file — as opposed to
// a failed discovery — so a CLI can map it to its parse-failure exit class.
type InputError struct {
	Path string
	Err  error
}

func (e *InputError) Error() string { return fmt.Sprintf("%s: %v", e.Path, e.Err) }
func (e *InputError) Unwrap() error { return e.Err }

// Resolve expands the spec's globs, sorts and deduplicates the matches into
// canonical document order, resolves each file's format, and validates the
// combination (lenient Turtle is an error, as is an empty match).
func (s Spec) Resolve() (*Resolved, error) {
	switch s.Format {
	case "", FormatAuto, FormatNT, FormatTurtle:
	default:
		return nil, fmt.Errorf("source: %q: %w", s.Format, ErrBadFormat)
	}
	var paths []string
	for _, in := range s.Inputs {
		if hasGlobMeta(in) {
			matches, err := filepath.Glob(in)
			if err != nil {
				return nil, fmt.Errorf("source: bad glob %q: %w", in, err)
			}
			if len(matches) == 0 {
				return nil, fmt.Errorf("source: %q: %w", in, ErrNoInput)
			}
			paths = append(paths, matches...)
			continue
		}
		paths = append(paths, in)
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("source: %w", ErrNoInput)
	}
	sort.Strings(paths)
	res := &Resolved{spec: s}
	for i, p := range paths {
		if i > 0 && p == paths[i-1] {
			continue
		}
		f := File{Path: p, Format: resolveFormat(s.Format, p)}
		if s.Lenient && f.Format == FormatTurtle {
			return nil, fmt.Errorf("source: %s: %w", p, ErrLenientTurtle)
		}
		res.Files = append(res.Files, f)
	}
	return res, nil
}

// hasGlobMeta reports whether the path contains filepath.Match
// metacharacters, so plain paths with no match on disk still surface a
// clean open error instead of a silent empty expansion.
func hasGlobMeta(path string) bool {
	return strings.ContainsAny(path, "*?[")
}

// resolveFormat picks a concrete format for one path: an explicit spec
// format wins; auto looks at the extension after stripping a .gz suffix.
func resolveFormat(specFormat, path string) string {
	if specFormat == FormatNT || specFormat == FormatTurtle {
		return specFormat
	}
	name := strings.ToLower(path)
	name = strings.TrimSuffix(name, ".gz")
	if strings.HasSuffix(name, ".ttl") || strings.HasSuffix(name, ".turtle") {
		return FormatTurtle
	}
	return FormatNT
}

// StreamFile streams one resolved file's blocks to emit, decoding gzip
// transparently (by .gz extension or magic bytes) as a stream: the
// compressed file is never slurped, so peak memory stays O(shards × block
// size) regardless of file size.
func (r *Resolved) StreamFile(i int, emit func(*rdf.TermBlock) error) error {
	f := r.Files[i]
	in, err := os.Open(f.Path)
	if err != nil {
		return &InputError{Path: f.Path, Err: err}
	}
	defer in.Close()
	dec, err := maybeGunzip(in)
	if err != nil {
		return &InputError{Path: f.Path, Err: err}
	}
	cfg := rdf.StreamConfig{
		Shards:     r.spec.Shards,
		BlockBytes: r.spec.BlockBytes,
		Lenient:    r.spec.Lenient,
		MaxErrors:  r.spec.MaxErrors,
	}
	switch f.Format {
	case FormatTurtle:
		err = rdf.StreamTurtle(dec, cfg, emit)
	default:
		err = rdf.StreamNTriples(dec, cfg, emit)
	}
	if err != nil {
		return &InputError{Path: f.Path, Err: err}
	}
	return nil
}

// gzipMagic is the two-byte gzip member header.
var gzipMagic = []byte{0x1f, 0x8b}

// maybeGunzip sniffs r and interposes a streaming gzip decoder when the
// content is gzipped.
func maybeGunzip(r io.Reader) (io.Reader, error) {
	br := bufio.NewReaderSize(r, 32<<10)
	head, err := br.Peek(2)
	if err != nil && err != io.EOF {
		return nil, err
	}
	if bytes.Equal(head, gzipMagic) {
		zr, err := gzip.NewReader(br)
		if err != nil {
			return nil, err
		}
		return zr, nil
	}
	return br, nil
}

// ReadDataset folds the whole resolved spec into one in-memory Dataset in
// canonical document order — the streaming replacement for the old
// slurp-readers used by serving and check modes, which still need the full
// dataset resident. Lenient-mode skipped lines come back attributed to
// their files.
func (r *Resolved) ReadDataset() (*rdf.Dataset, []Malformed, error) {
	ds := rdf.NewDataset()
	var skipped []Malformed
	var remap []rdf.Value
	for i := range r.Files {
		path := r.Files[i].Path
		err := r.StreamFile(i, func(blk *rdf.TermBlock) error {
			remap = ds.AppendBlock(blk, remap)
			for _, e := range blk.Errs {
				skipped = append(skipped, Malformed{Path: path, Err: e})
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
	}
	return ds, skipped, nil
}
