package source

import (
	"bytes"
	"compress/gzip"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro/internal/rdf"
)

const ntDoc = `<http://ex/s1> <http://ex/p> <http://ex/o1> .
<http://ex/s2> <http://ex/p> "lit" .
<http://ex/s1> <http://ex/q> "v"@en .
`

const ttlDoc = `@prefix ex: <http://ex/> .
ex:s3 ex:p ex:o2 ; ex:q "w" .
`

func write(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func gz(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestResolveOrderAndFormats: glob expansion sorts into canonical document
// order, dedupes, and resolves per-file formats through .gz suffixes.
func TestResolveOrderAndFormats(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "b.nt"), []byte(ntDoc))
	write(t, filepath.Join(dir, "a.ttl"), []byte(ttlDoc))
	write(t, filepath.Join(dir, "c.nt.gz"), gz(t, []byte(ntDoc)))

	spec := Spec{Inputs: []string{
		filepath.Join(dir, "*.nt"),
		filepath.Join(dir, "a.ttl"),
		filepath.Join(dir, "c.nt.gz"),
		filepath.Join(dir, "b.nt"), // duplicate of the glob match
	}}
	r, err := spec.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	var got []string
	for _, f := range r.Files {
		got = append(got, filepath.Base(f.Path)+":"+f.Format)
	}
	want := []string{"a.ttl:turtle", "b.nt:nt", "c.nt.gz:nt"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("resolved %v, want %v", got, want)
	}
}

func TestResolveErrors(t *testing.T) {
	if _, err := (Spec{Inputs: []string{"/no/such/dir/*.nt"}}).Resolve(); !errors.Is(err, ErrNoInput) {
		t.Errorf("empty glob: %v, want ErrNoInput", err)
	}
	if _, err := (Spec{}).Resolve(); !errors.Is(err, ErrNoInput) {
		t.Errorf("no inputs: %v, want ErrNoInput", err)
	}
	if _, err := (Spec{Inputs: []string{"x.nt"}, Format: "rdfxml"}).Resolve(); !errors.Is(err, ErrBadFormat) {
		t.Errorf("bad format: %v, want ErrBadFormat", err)
	}
	if _, err := (Spec{Inputs: []string{"x.ttl"}, Lenient: true}).Resolve(); !errors.Is(err, ErrLenientTurtle) {
		t.Errorf("lenient turtle: %v, want ErrLenientTurtle", err)
	}
	// An explicit nt format on a .ttl path is the caller's call — no error.
	if _, err := (Spec{Inputs: []string{"x.ttl"}, Format: FormatNT, Lenient: true}).Resolve(); err != nil {
		t.Errorf("lenient with explicit nt format: %v", err)
	}
}

// TestReadDatasetMixed folds a mixed nt + turtle + gzip spec and checks the
// combined dataset against the per-format slurp readers over the same
// concatenation order.
func TestReadDatasetMixed(t *testing.T) {
	dir := t.TempDir()
	write(t, filepath.Join(dir, "a.ttl"), []byte(ttlDoc))
	write(t, filepath.Join(dir, "b.nt"), []byte(ntDoc))
	write(t, filepath.Join(dir, "c.nt.gz"), gz(t, []byte(ntDoc)))

	r, err := Spec{Inputs: []string{filepath.Join(dir, "*")}}.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	ds, skipped, err := r.ReadDataset()
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("unexpected skipped lines: %v", skipped)
	}

	want := rdf.NewDataset()
	ttl, err := rdf.ReadTurtle(bytes.NewReader([]byte(ttlDoc)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range ttl.Triples {
		want.Add(ttl.Dict.Decode(tr.S), ttl.Dict.Decode(tr.P), ttl.Dict.Decode(tr.O))
	}
	nt, err := rdf.ReadNTriples(bytes.NewReader([]byte(ntDoc + ntDoc)))
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range nt.Triples {
		want.Add(nt.Dict.Decode(tr.S), nt.Dict.Decode(tr.P), nt.Dict.Decode(tr.O))
	}

	if ds.Size() != want.Size() || ds.Dict.Len() != want.Dict.Len() {
		t.Fatalf("got %d triples / %d terms, want %d / %d",
			ds.Size(), ds.Dict.Len(), want.Size(), want.Dict.Len())
	}
	for i, tr := range ds.Triples {
		w := want.Triples[i]
		if tr != w {
			t.Fatalf("triple %d = %v, want %v", i, tr, w)
		}
	}
}

// TestStreamGzipBoundedHeap is the streamed-gzip memory guarantee: streaming
// a synthetic N-Triples file far larger than the block budget must keep the
// peak heap well below the uncompressed input size, proving neither the
// gzip layer nor the reader slurps.
func TestStreamGzipBoundedHeap(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "big.nt.gz")

	// ~32 MiB of uncompressed N-Triples, written as a stream.
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	var uncompressed int64
	const lines = 400_000
	for i := 0; i < lines; i++ {
		n, err := fmt.Fprintf(zw, "<http://example.org/subject/%d> <http://example.org/predicate/%d> \"object value number %d padded for width\" .\n",
			i, i%97, i)
		if err != nil {
			t.Fatal(err)
		}
		uncompressed += int64(n)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if uncompressed < 32<<20 {
		t.Fatalf("synthetic input only %d bytes, want >= 32 MiB", uncompressed)
	}

	r, err := Spec{Inputs: []string{path}, BlockBytes: 1 << 20}.Resolve()
	if err != nil {
		t.Fatal(err)
	}

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	var peak uint64
	var triples, bytesSeen int64
	blocks := 0
	err = r.StreamFile(0, func(blk *rdf.TermBlock) error {
		triples += int64(len(blk.Triples))
		bytesSeen += int64(blk.Bytes)
		// Sample the live heap (post-GC HeapAlloc) every few blocks: raw
		// HeapAlloc would measure GC pacing, not retention, while live heap
		// directly exposes a slurp — a reader holding the decompressed input
		// would keep it reachable across every sample.
		if blocks++; blocks%8 == 0 {
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if triples != lines {
		t.Fatalf("streamed %d triples, want %d", triples, lines)
	}
	if bytesSeen != uncompressed {
		t.Fatalf("block byte accounting %d, want %d", bytesSeen, uncompressed)
	}

	var grown uint64
	if peak > before.HeapAlloc {
		grown = peak - before.HeapAlloc
	}
	// The stream holds O(shards × block) plus parser scratch — chunk buffers
	// round up toward 2 MiB once the line-boundary tail is appended, and a
	// handful are in flight — so true retention is a fixed ~12 MiB however
	// large the input. Half the input is a sharp ceiling with margin: a slurp
	// retains the full uncompressed bytes and blows straight through it.
	if limit := uint64(uncompressed / 2); grown > limit {
		t.Errorf("peak heap grew %d bytes streaming a %d byte input (limit %d): ingest is slurping",
			grown, uncompressed, limit)
	}
}

// TestPartitioners: both strategies are total over [0, workers), stable, and
// differ in their placement signal (subject-locality keeps a subject's
// triples together; hash spreads them).
func TestPartitioners(t *testing.T) {
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
	hp, err := ByName("hash")
	if err != nil || hp.Name() != "hash" {
		t.Fatalf("ByName(hash): %v, %v", hp, err)
	}
	sp, err := ByName("subject")
	if err != nil || sp.Name() != "subject" {
		t.Fatalf("ByName(subject): %v, %v", sp, err)
	}
	def, err := ByName("")
	if err != nil || def.Name() != "hash" {
		t.Fatalf("ByName(\"\") should default to hash: %v, %v", def, err)
	}

	const workers = 4
	for s := rdf.Value(0); s < 50; s++ {
		home := sp.Place(rdf.Triple{S: s, P: 0, O: 0}, workers)
		for o := rdf.Value(0); o < 10; o++ {
			tr := rdf.Triple{S: s, P: rdf.Value(o % 3), O: o}
			for _, p := range []Partitioner{hp, sp} {
				w := p.Place(tr, workers)
				if w < 0 || w >= workers {
					t.Fatalf("%s placed %v at %d of %d", p.Name(), tr, w, workers)
				}
				if w2 := p.Place(tr, workers); w2 != w {
					t.Fatalf("%s placement unstable for %v", p.Name(), tr)
				}
			}
			if got := sp.Place(tr, workers); got != home {
				t.Errorf("subject partitioner split subject %d across %d and %d", s, home, got)
			}
			if hp.Place(tr, 1) != 0 || sp.Place(tr, 1) != 0 {
				t.Error("single-worker placement must be 0")
			}
		}
	}
}
