package sparql

import (
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/triplestore"
)

// BenchmarkQ2OriginalVsMinimized is the micro version of Fig. 14: executing
// LUBM query Q2 before and after CIND-based minimization.
func BenchmarkQ2OriginalVsMinimized(b *testing.B) {
	ds := datagen.LUBM(0.3)
	st := triplestore.New(ds)
	res, _ := core.Discover(ds, core.Config{Support: 2, Workers: 2})
	q, err := Parse(LUBMQ2ForBench)
	if err != nil {
		b.Fatal(err)
	}
	min := Minimize(q, res, ds.Dict)
	b.Run("original", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Execute(st, q); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("minimized", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Execute(st, min); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// LUBMQ2ForBench mirrors the Fig. 14 query.
const LUBMQ2ForBench = "SELECT ?x ?y ?z WHERE { " +
	"?x rdf:type GraduateStudent . ?y rdf:type University . ?z rdf:type Department . " +
	"?x memberOf ?z . ?z subOrganizationOf ?y . ?x undergraduateDegreeFrom ?y }"

func BenchmarkParse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Parse(LUBMQ2ForBench); err != nil {
			b.Fatal(err)
		}
	}
}
