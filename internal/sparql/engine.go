package sparql

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/cind"
	"repro/internal/triplestore"
)

// ErrEngineClosed is returned by Execute after Close.
var ErrEngineClosed = errors.New("sparql: engine closed")

// EngineConfig tunes a concurrent query engine.
type EngineConfig struct {
	// Workers is the number of executor goroutines (default 4).
	Workers int
	// QueueDepth bounds the admission queue (default 2×Workers). When the
	// queue is full, Execute blocks until a slot frees or its context ends.
	QueueDepth int
	// Timeout caps each query's execution time; 0 means no engine-imposed
	// deadline (the caller's context still applies).
	Timeout time.Duration
	// CacheSize bounds the plan cache (default 256 shapes, FIFO eviction).
	// Negative disables caching.
	CacheSize int
	// Knowledge optionally supplies a CIND discovery result; plans then
	// minimize queries before ordering, so repeated shapes skip both
	// minimization and greedy planning.
	Knowledge *cind.Result
}

// EngineStats is a point-in-time snapshot of engine counters.
type EngineStats struct {
	Queries         int64 `json:"queries"`
	Errors          int64 `json:"errors"`
	Timeouts        int64 `json:"timeouts"`
	Rejected        int64 `json:"rejected"`
	PlanCacheHits   int64 `json:"plan_cache_hits"`
	PlanCacheMisses int64 `json:"plan_cache_misses"`
}

// Engine executes queries concurrently over a read-only triplestore.Store: a
// fixed worker pool drains a bounded admission queue, each query runs under
// its caller's context plus an optional engine-wide timeout, and minimized
// plans are cached by BGP shape (ShapeKey) so repeated query shapes skip
// planning entirely. The store's read-only-after-load invariant is what
// makes the workers safe without locks; the engine itself only locks the
// plan cache.
type Engine struct {
	st  *triplestore.Store
	cfg EngineConfig

	tasks  chan *engineTask
	quit   chan struct{}
	wg     sync.WaitGroup // worker goroutines
	execWG sync.WaitGroup // in-flight Execute calls

	mu     sync.Mutex
	closed bool
	stats  EngineStats
	cache  map[string]*Plan
	fifo   []string
}

type engineTask struct {
	ctx  context.Context
	q    *Query
	res  *Result
	err  error
	done chan struct{}
}

// NewEngine starts the worker pool. Callers must Close the engine when done.
func NewEngine(st *triplestore.Store, cfg EngineConfig) *Engine {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 2 * cfg.Workers
	}
	if cfg.CacheSize == 0 {
		cfg.CacheSize = 256
	}
	e := &Engine{
		st:    st,
		cfg:   cfg,
		tasks: make(chan *engineTask, cfg.QueueDepth),
		quit:  make(chan struct{}),
		cache: make(map[string]*Plan),
	}
	e.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go e.worker()
	}
	return e
}

func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		select {
		case t := <-e.tasks:
			e.run(t)
		case <-e.quit:
			return
		}
	}
}

func (e *Engine) run(t *engineTask) {
	defer close(t.done)
	ctx := t.ctx
	if e.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.cfg.Timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		// Cancelled or timed out while queued: never start executing.
		t.err = fmt.Errorf("sparql: query aborted: %w", err)
	} else {
		t.res, t.err = ExecutePlan(ctx, e.st, t.q, e.plan(t.q))
	}
	if t.err != nil {
		e.count(func(s *EngineStats) {
			s.Errors++
			if errors.Is(t.err, context.DeadlineExceeded) {
				s.Timeouts++
			}
		})
	}
}

// plan returns the cached plan for q's shape, building and caching it on a
// miss. Plans are valid across same-shaped queries because ShapeKey
// canonicalizes variable names and resolves constants against the read-only
// dictionary.
func (e *Engine) plan(q *Query) *Plan {
	if e.cfg.CacheSize < 0 {
		return PlanQuery(e.st, q, e.cfg.Knowledge)
	}
	key := ShapeKey(e.st, q)
	e.mu.Lock()
	if p, ok := e.cache[key]; ok {
		e.stats.PlanCacheHits++
		e.mu.Unlock()
		return p
	}
	e.stats.PlanCacheMisses++
	e.mu.Unlock()

	p := PlanQuery(e.st, q, e.cfg.Knowledge) // outside the lock: planning is read-only
	e.mu.Lock()
	if _, ok := e.cache[key]; !ok {
		if len(e.fifo) >= e.cfg.CacheSize {
			delete(e.cache, e.fifo[0])
			e.fifo = e.fifo[1:]
		}
		e.cache[key] = p
		e.fifo = append(e.fifo, key)
	}
	e.mu.Unlock()
	return p
}

// Execute submits a query and blocks until it completes or ctx ends.
// Admission is bounded: when all workers are busy and the queue is full,
// Execute waits in line, and a context that expires while waiting (or while
// queued) aborts with the context's error.
func (e *Engine) Execute(ctx context.Context, q *Query) (*Result, error) {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrEngineClosed
	}
	e.execWG.Add(1)
	e.stats.Queries++
	e.mu.Unlock()
	defer e.execWG.Done()

	t := &engineTask{ctx: ctx, q: q, done: make(chan struct{})}
	select {
	case e.tasks <- t:
	case <-ctx.Done():
		e.count(func(s *EngineStats) { s.Rejected++ })
		return nil, fmt.Errorf("sparql: admission aborted: %w", ctx.Err())
	}
	// Workers stay alive until every in-flight Execute returns (Close waits
	// on execWG before stopping them), and they honor t.ctx, so completion
	// is prompt after cancellation; waiting on done alone avoids racing the
	// worker's result writes.
	<-t.done
	return t.res, t.err
}

// ExecuteString parses and executes a query text.
func (e *Engine) ExecuteString(ctx context.Context, text string) (*Result, error) {
	q, err := Parse(text)
	if err != nil {
		return nil, err
	}
	return e.Execute(ctx, q)
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// CachedPlans returns the number of plans currently cached.
func (e *Engine) CachedPlans() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.cache)
}

// Close refuses new queries, waits for every in-flight Execute to finish
// (workers keep draining the queue until then), and stops the worker pool.
// Execute calls after Close fail with ErrEngineClosed.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	e.mu.Unlock()
	e.execWG.Wait()
	close(e.quit)
	e.wg.Wait()
}

func (e *Engine) count(f func(*EngineStats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}
