package sparql

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/triplestore"
)

func TestShapeKeyCanonicalization(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	parse := func(text string) *Query {
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		return q
	}

	a := parse("SELECT ?x WHERE { ?x rdf:type GraduateStudent . ?x memberOf ?d }")
	renamed := parse("SELECT ?q WHERE { ?q rdf:type GraduateStudent . ?q memberOf ?other }")
	if ShapeKey(st, a) != ShapeKey(st, renamed) {
		t.Errorf("variable renaming changed the shape key")
	}
	otherConst := parse("SELECT ?x WHERE { ?x rdf:type University . ?x memberOf ?d }")
	if ShapeKey(st, a) == ShapeKey(st, otherConst) {
		t.Errorf("different constants share a shape key")
	}
	otherStruct := parse("SELECT ?x WHERE { ?x rdf:type GraduateStudent . ?d memberOf ?x }")
	if ShapeKey(st, a) == ShapeKey(st, otherStruct) {
		t.Errorf("different variable structure shares a shape key")
	}
	filtered := parse("SELECT ?x WHERE { ?x rdf:type GraduateStudent . ?x memberOf ?d . FILTER(?x != ?d) }")
	if ShapeKey(st, a) == ShapeKey(st, filtered) {
		t.Errorf("adding a filter did not change the shape key")
	}
}

// TestPlanQueryMatchesAdaptiveResults: for the whole workload, executing a
// static plan (with and without CIND knowledge) yields byte-identical rows
// to the adaptive path.
func TestPlanQueryMatchesAdaptiveResults(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	res, _ := core.Discover(ds, core.Config{Support: 2, Workers: 2})

	for _, text := range engineWorkloadTexts(t) {
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		want, err := Execute(st, q)
		if err != nil {
			t.Fatal(err)
		}
		for _, knowledge := range []struct {
			name string
			res  *cind.Result
		}{{"unminimized", nil}, {"minimized", res}} {
			plan := PlanQuery(st, q, knowledge.res)
			if len(plan.Order) == 0 || len(plan.Order) > len(q.Patterns) {
				t.Fatalf("%s (%s): bad plan order %v", text, knowledge.name, plan.Order)
			}
			got, err := ExecutePlan(context.Background(), st, q, plan)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Rows, want.Rows) {
				t.Errorf("%s (%s): planned rows diverge from adaptive execution", text, knowledge.name)
			}
		}
	}
}

// TestPlanQueryMinimizesQ2: the cached plan for LUBM Q2 must carry the
// paper's 6→3 pattern reduction.
func TestPlanQueryMinimizesQ2(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	res, _ := core.Discover(ds, core.Config{Support: 2, Workers: 2})
	q, err := Parse(strings.ReplaceAll(LUBMQ2, "\n", " "))
	if err != nil {
		t.Fatal(err)
	}
	plan := PlanQuery(st, q, res)
	if !plan.Minimized || len(plan.Order) != 3 {
		t.Fatalf("Q2 plan kept %d patterns (minimized=%v), paper reaches 3", len(plan.Order), plan.Minimized)
	}
	want, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExecutePlan(context.Background(), st, q, plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Rows) == 0 || !reflect.DeepEqual(got.Rows, want.Rows) {
		t.Errorf("minimized Q2 plan changed results: %d vs %d rows", len(got.Rows), len(want.Rows))
	}
}

// engineWorkloadTexts builds a 120-query seeded workload of mixed shapes:
// repeated shapes with different constants (plan-cache food), joins,
// DISTINCT, filters, and limits.
func engineWorkloadTexts(t *testing.T) []string {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	var out []string
	for len(out) < 120 {
		switch rng.Intn(6) {
		case 0:
			out = append(out, fmt.Sprintf(
				"SELECT ?x WHERE { ?x rdf:type GraduateStudent . ?x memberOf dept%d_%d }",
				rng.Intn(2), rng.Intn(5)))
		case 1:
			out = append(out, fmt.Sprintf(
				"SELECT DISTINCT ?y WHERE { ?x undergraduateDegreeFrom ?y . ?x memberOf dept%d_%d }",
				rng.Intn(2), rng.Intn(5)))
		case 2:
			out = append(out, "SELECT ?x ?z WHERE { ?x rdf:type GraduateStudent . ?x memberOf ?z }")
		case 3:
			out = append(out, fmt.Sprintf(
				"SELECT ?x ?c WHERE { ?x takesCourse ?c . ?x memberOf dept%d_%d . FILTER(?x != ?c) } LIMIT %d",
				rng.Intn(2), rng.Intn(5), 1+rng.Intn(10)))
		case 4:
			out = append(out, "SELECT DISTINCT ?p WHERE { ?s ?p ?o } LIMIT 50")
		case 5:
			out = append(out, strings.ReplaceAll(LUBMQ2, "\n", " "))
		}
	}
	return out
}

// TestEngineConcurrentMatchesSerial is the tentpole acceptance test: 12
// goroutines push the 120-query seeded workload through one shared engine
// (run under -race), and every result must be byte-identical to serial
// single-threaded execution.
func TestEngineConcurrentMatchesSerial(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	res, _ := core.Discover(ds, core.Config{Support: 2, Workers: 2})
	workload := engineWorkloadTexts(t)

	// Serial oracle with the plain adaptive executor.
	serial := make([]*Result, len(workload))
	for i, text := range workload {
		q, err := Parse(text)
		if err != nil {
			t.Fatal(err)
		}
		if serial[i], err = Execute(st, q); err != nil {
			t.Fatal(err)
		}
	}

	e := NewEngine(st, EngineConfig{Workers: 8, Knowledge: res})
	defer e.Close()

	const goroutines = 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(workload); i += goroutines {
				got, err := e.ExecuteString(context.Background(), workload[i])
				if err != nil {
					errCh <- fmt.Errorf("query %d: %w", i, err)
					return
				}
				if !reflect.DeepEqual(got.Rows, serial[i].Rows) {
					errCh <- fmt.Errorf("query %d: concurrent rows diverge from serial", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	stats := e.Stats()
	if stats.Queries != int64(len(workload)) {
		t.Errorf("Queries = %d, want %d", stats.Queries, len(workload))
	}
	if stats.PlanCacheHits == 0 {
		t.Errorf("repeated shapes produced no plan-cache hits: %+v", stats)
	}
	if stats.PlanCacheMisses == 0 || stats.PlanCacheMisses > int64(len(workload)) {
		t.Errorf("implausible miss count: %+v", stats)
	}
	if e.CachedPlans() == 0 {
		t.Errorf("plan cache empty after workload")
	}
}

// TestEngineRepeatedShapeHitsCache: two same-shaped queries with different
// variable names produce exactly one miss and one hit.
func TestEngineRepeatedShapeHitsCache(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	e := NewEngine(st, EngineConfig{Workers: 1})
	defer e.Close()

	ctx := context.Background()
	if _, err := e.ExecuteString(ctx, "SELECT ?x WHERE { ?x rdf:type GraduateStudent . ?x memberOf ?d }"); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExecuteString(ctx, "SELECT ?a WHERE { ?a rdf:type GraduateStudent . ?a memberOf ?b }"); err != nil {
		t.Fatal(err)
	}
	stats := e.Stats()
	if stats.PlanCacheMisses != 1 || stats.PlanCacheHits != 1 {
		t.Errorf("stats = %+v, want 1 miss + 1 hit", stats)
	}
}

// TestEngineCacheEviction: FIFO eviction keeps the cache at CacheSize.
func TestEngineCacheEviction(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	e := NewEngine(st, EngineConfig{Workers: 1, CacheSize: 3})
	defer e.Close()
	ctx := context.Background()
	for u := 0; u < 2; u++ {
		for d := 0; d < 3; d++ {
			text := fmt.Sprintf("SELECT ?x WHERE { ?x memberOf dept%d_%d }", u, d)
			if _, err := e.ExecuteString(ctx, text); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n := e.CachedPlans(); n != 3 {
		t.Errorf("cache holds %d plans, want 3", n)
	}
	if stats := e.Stats(); stats.PlanCacheMisses != 6 {
		t.Errorf("distinct shapes should all miss: %+v", stats)
	}
}

// TestEngineTimeout: an engine-imposed timeout aborts a long query with
// context.DeadlineExceeded and counts it.
func TestEngineTimeout(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	e := NewEngine(st, EngineConfig{Workers: 1, Timeout: time.Nanosecond})
	defer e.Close()
	// A cross-product-heavy query so evaluation cannot finish instantly.
	_, err := e.ExecuteString(context.Background(),
		"SELECT ?s ?p ?o ?s2 WHERE { ?s ?p ?o . ?s2 ?p ?o2 }")
	if err == nil {
		t.Fatalf("nanosecond timeout did not abort the query")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if stats := e.Stats(); stats.Timeouts != 1 || stats.Errors != 1 {
		t.Errorf("stats = %+v, want 1 timeout", stats)
	}
}

// TestEngineAdmissionCancellation: a context cancelled before admission
// aborts without executing.
func TestEngineAdmissionCancellation(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	e := NewEngine(st, EngineConfig{Workers: 1})
	defer e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ExecuteString(ctx, "SELECT ?s WHERE { ?s ?p ?o }"); err == nil {
		t.Fatalf("cancelled context admitted a query")
	}
}

// TestEngineClose: Execute after Close fails with ErrEngineClosed, and Close
// is idempotent.
func TestEngineClose(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	e := NewEngine(st, EngineConfig{Workers: 2})
	if _, err := e.ExecuteString(context.Background(), "SELECT ?s WHERE { ?s rdf:type University }"); err != nil {
		t.Fatal(err)
	}
	e.Close()
	e.Close()
	if _, err := e.ExecuteString(context.Background(), "SELECT ?s WHERE { ?s ?p ?o }"); !errors.Is(err, ErrEngineClosed) {
		t.Fatalf("err = %v, want ErrEngineClosed", err)
	}
}

// TestEngineParseError: ExecuteString surfaces parse errors without touching
// the pool.
func TestEngineParseError(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	e := NewEngine(st, EngineConfig{Workers: 1})
	defer e.Close()
	if _, err := e.ExecuteString(context.Background(), "nonsense"); err == nil {
		t.Fatalf("parse error not surfaced")
	}
}
