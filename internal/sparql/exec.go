package sparql

import (
	"fmt"
	"sort"

	"repro/internal/rdf"
	"repro/internal/triplestore"
)

// Binding maps variable names to dictionary-encoded values.
type Binding map[string]rdf.Value

// Result holds query output rows, projected onto the query's variables.
type Result struct {
	Vars []string
	Rows [][]rdf.Value
}

// Execute evaluates the query with index nested loops. Patterns are ordered
// greedily: at each step the pattern with the lowest estimated cardinality
// under the current bound-variable set runs next, which is the standard
// selectivity-driven plan a store like RDF-3X would pick.
//
// A constant term that is not in the dictionary matches nothing, so such
// queries return empty results rather than failing.
func Execute(st *triplestore.Store, q *Query) (*Result, error) {
	vars := q.Vars
	if len(vars) == 0 {
		seen := map[string]bool{}
		for _, p := range q.Patterns {
			for _, v := range p.Vars() {
				if !seen[v] {
					seen[v] = true
					vars = append(vars, v)
				}
			}
		}
	}
	res := &Result{Vars: vars}

	// Resolve constants once; unknown constants make the query empty.
	type resolved struct {
		pat  Pattern
		vals [3]rdf.Value // Wildcard where variable
		ok   bool
	}
	rps := make([]resolved, len(q.Patterns))
	for i, p := range q.Patterns {
		rps[i].pat = p
		rps[i].ok = true
		for j, t := range p.Terms() {
			if t.IsVar() {
				rps[i].vals[j] = triplestore.Wildcard
			} else if id, ok := st.Dict().Lookup(t.Const); ok {
				rps[i].vals[j] = id
			} else {
				rps[i].ok = false
			}
		}
		if !rps[i].ok {
			return res, nil // a constant never occurs: no matches
		}
	}

	// Recursive index-nested-loop evaluation with greedy ordering.
	binding := Binding{}
	remaining := make([]int, len(rps))
	for i := range remaining {
		remaining[i] = i
	}

	bound := func(i int) [3]rdf.Value {
		vals := rps[i].vals
		for j, t := range rps[i].pat.Terms() {
			if t.IsVar() {
				if v, ok := binding[t.Var]; ok {
					vals[j] = v
				}
			}
		}
		return vals
	}

	// Resolve filter constants once; a constant absent from the dictionary
	// can never equal anything.
	type resolvedFilter struct {
		f        Filter
		lc, rc   rdf.Value // resolved constants (or Wildcard for variables)
		lUnknown bool
		rUnknown bool
	}
	filters := make([]resolvedFilter, len(q.Filters))
	for i, f := range q.Filters {
		rf := resolvedFilter{f: f, lc: triplestore.Wildcard, rc: triplestore.Wildcard}
		if !f.Left.IsVar() {
			if id, ok := st.Dict().Lookup(f.Left.Const); ok {
				rf.lc = id
			} else {
				rf.lUnknown = true
			}
		}
		if !f.Right.IsVar() {
			if id, ok := st.Dict().Lookup(f.Right.Const); ok {
				rf.rc = id
			} else {
				rf.rUnknown = true
			}
		}
		filters[i] = rf
	}
	passesFilters := func() bool {
		for _, rf := range filters {
			lv, rv := rf.lc, rf.rc
			if rf.f.Left.IsVar() {
				lv = binding[rf.f.Left.Var]
			}
			if rf.f.Right.IsVar() {
				rv = binding[rf.f.Right.Var]
			}
			equal := lv == rv && !rf.lUnknown && !rf.rUnknown
			if rf.f.Op == OpEq && !equal || rf.f.Op == OpNe && equal {
				return false
			}
		}
		return true
	}

	var eval func(remaining []int) error
	eval = func(remaining []int) error {
		if len(remaining) == 0 {
			if !passesFilters() {
				return nil
			}
			row := make([]rdf.Value, len(vars))
			for i, v := range vars {
				val, ok := binding[v]
				if !ok {
					return fmt.Errorf("sparql: projected variable ?%s is unbound", v)
				}
				row[i] = val
			}
			res.Rows = append(res.Rows, row)
			return nil
		}
		// Pick the most selective remaining pattern.
		best, bestCard := -1, 0
		for idx, i := range remaining {
			vals := bound(i)
			card := st.Cardinality(vals[0], vals[1], vals[2])
			if best < 0 || card < bestCard {
				best, bestCard = idx, card
			}
		}
		i := remaining[best]
		rest := make([]int, 0, len(remaining)-1)
		rest = append(rest, remaining[:best]...)
		rest = append(rest, remaining[best+1:]...)

		vals := bound(i)
		terms := rps[i].pat.Terms()
		var scanErr error
		st.Scan(vals[0], vals[1], vals[2], func(t rdf.Triple) bool {
			got := [3]rdf.Value{t.S, t.P, t.O}
			var assigned []string
			consistent := true
			for j, term := range terms {
				if !term.IsVar() {
					continue
				}
				if v, ok := binding[term.Var]; ok {
					if v != got[j] {
						consistent = false
						break
					}
				} else {
					binding[term.Var] = got[j]
					assigned = append(assigned, term.Var)
				}
			}
			if consistent {
				if err := eval(rest); err != nil {
					scanErr = err
				}
			}
			for _, v := range assigned {
				delete(binding, v)
			}
			return scanErr == nil
		})
		return scanErr
	}
	if err := eval(remaining); err != nil {
		return nil, err
	}
	if q.Distinct {
		seen := make(map[string]bool, len(res.Rows))
		kept := res.Rows[:0]
		for _, row := range res.Rows {
			k := fmt.Sprint(row)
			if !seen[k] {
				seen[k] = true
				kept = append(kept, row)
			}
		}
		res.Rows = kept
	}
	sortRows(res)
	if q.Limit > 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// sortRows gives deterministic output order.
func sortRows(res *Result) {
	sort.Slice(res.Rows, func(i, j int) bool {
		a, b := res.Rows[i], res.Rows[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}

// Render decodes result rows into surface forms.
func (r *Result) Render(dict *rdf.Dictionary) [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		sr := make([]string, len(row))
		for j, v := range row {
			sr[j] = dict.Decode(v)
		}
		out[i] = sr
	}
	return out
}
