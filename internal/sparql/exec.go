package sparql

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/rdf"
	"repro/internal/triplestore"
)

// Binding maps variable names to dictionary-encoded values.
type Binding map[string]rdf.Value

// Result holds query output rows, projected onto the query's variables.
type Result struct {
	Vars []string
	Rows [][]rdf.Value
}

// ctxCheckInterval is how many index-scan callbacks pass between context
// polls during evaluation: frequent enough that cancellation and timeouts
// abort long joins promptly, rare enough to stay off the hot path.
const ctxCheckInterval = 4096

// Execute evaluates the query with index nested loops. Patterns are ordered
// greedily: at each step the pattern with the lowest estimated cardinality
// under the current bound-variable set runs next, which is the standard
// selectivity-driven plan a store like RDF-3X would pick.
//
// A constant term that is not in the dictionary matches nothing, so such
// queries return empty results rather than failing. A filter that mentions a
// variable no pattern binds is an error (Parse rejects such queries, but
// programmatically built ones reach evaluation unchecked).
func Execute(st *triplestore.Store, q *Query) (*Result, error) {
	return ExecuteContext(context.Background(), st, q)
}

// ExecuteContext is Execute under a cancellation context: cancelling (or
// timing out) ctx aborts evaluation promptly with an error wrapping
// ctx.Err().
func ExecuteContext(ctx context.Context, st *triplestore.Store, q *Query) (*Result, error) {
	order := make([]int, len(q.Patterns))
	for i := range order {
		order[i] = i
	}
	return executeOrdered(ctx, st, q, order, true)
}

// executeOrdered evaluates q over the patterns listed in order (indices into
// q.Patterns — the planner passes minimized subsets in join order). With
// adaptive set, the order is re-derived greedily at every recursion step from
// current cardinality estimates; otherwise the given order is followed as-is,
// skipping per-step planning.
func executeOrdered(ctx context.Context, st *triplestore.Store, q *Query, order []int, adaptive bool) (*Result, error) {
	vars := q.Vars
	if len(vars) == 0 {
		seen := map[string]bool{}
		for _, p := range q.Patterns {
			for _, v := range p.Vars() {
				if !seen[v] {
					seen[v] = true
					vars = append(vars, v)
				}
			}
		}
	}
	executed := make([]Pattern, len(order))
	for i, pi := range order {
		executed[i] = q.Patterns[pi]
	}
	if err := validateFilterVars(executed, q.Filters); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("sparql: query aborted: %w", err)
	}
	res := &Result{Vars: vars}

	rps, ok := resolvePatterns(st, executed)
	if !ok {
		return res, nil // a constant never occurs: no matches
	}
	e := &executor{
		ctx:      ctx,
		st:       st,
		rps:      rps,
		filters:  resolveFilters(st, q.Filters),
		binding:  Binding{},
		vars:     vars,
		adaptive: adaptive,
		out:      &rowCollector{limit: q.Limit, distinct: q.Distinct},
	}
	remaining := make([]int, len(rps))
	for i := range remaining {
		remaining[i] = i
	}
	if err := e.eval(remaining); err != nil {
		return nil, err
	}
	res.Rows = e.out.finish()
	return res, nil
}

// validateFilterVars rejects filters over variables no executed pattern
// binds: the zero rdf.Value is a valid dictionary ID (the first interned
// term), so silently reading an absent binding would compare against
// whatever term happened to be interned first.
func validateFilterVars(patterns []Pattern, filters []Filter) error {
	if len(filters) == 0 {
		return nil
	}
	bound := map[string]bool{}
	for _, p := range patterns {
		for _, v := range p.Vars() {
			bound[v] = true
		}
	}
	for _, f := range filters {
		for _, t := range []Term{f.Left, f.Right} {
			if t.IsVar() && !bound[t.Var] {
				return fmt.Errorf("sparql: filter variable ?%s is bound by no pattern", t.Var)
			}
		}
	}
	return nil
}

// resolvedPattern is a pattern with its constants resolved to dictionary IDs
// (Wildcard where variable). ok=false means a constant is unknown.
type resolvedPattern struct {
	pat  Pattern
	vals [3]rdf.Value
}

// resolvePatterns resolves constants once; an unknown constant makes the
// whole query empty (second return false).
func resolvePatterns(st *triplestore.Store, patterns []Pattern) ([]resolvedPattern, bool) {
	rps := make([]resolvedPattern, len(patterns))
	for i, p := range patterns {
		rps[i].pat = p
		for j, t := range p.Terms() {
			if t.IsVar() {
				rps[i].vals[j] = triplestore.Wildcard
			} else if id, ok := st.Dict().Lookup(t.Const); ok {
				rps[i].vals[j] = id
			} else {
				return nil, false
			}
		}
	}
	return rps, true
}

// resolvedFilter carries a filter with its constants resolved; a constant
// absent from the dictionary can never equal anything.
type resolvedFilter struct {
	f        Filter
	lc, rc   rdf.Value // resolved constants (or Wildcard for variables)
	lUnknown bool
	rUnknown bool
}

func resolveFilters(st *triplestore.Store, filters []Filter) []resolvedFilter {
	out := make([]resolvedFilter, len(filters))
	for i, f := range filters {
		rf := resolvedFilter{f: f, lc: triplestore.Wildcard, rc: triplestore.Wildcard}
		if !f.Left.IsVar() {
			if id, ok := st.Dict().Lookup(f.Left.Const); ok {
				rf.lc = id
			} else {
				rf.lUnknown = true
			}
		}
		if !f.Right.IsVar() {
			if id, ok := st.Dict().Lookup(f.Right.Const); ok {
				rf.rc = id
			} else {
				rf.rUnknown = true
			}
		}
		out[i] = rf
	}
	return out
}

// executor is the state of one index-nested-loop evaluation.
type executor struct {
	ctx      context.Context
	st       *triplestore.Store
	rps      []resolvedPattern
	filters  []resolvedFilter
	binding  Binding
	vars     []string
	adaptive bool
	out      *rowCollector
	ticks    int
}

// bound substitutes current bindings into pattern i's scan values.
func (e *executor) bound(i int) [3]rdf.Value {
	vals := e.rps[i].vals
	for j, t := range e.rps[i].pat.Terms() {
		if t.IsVar() {
			if v, ok := e.binding[t.Var]; ok {
				vals[j] = v
			}
		}
	}
	return vals
}

// passesFilters checks every filter against the complete binding. A variable
// missing from the binding (impossible after validateFilterVars, but kept as
// defense in depth) is never equal to anything: id 0 is a real term, not a
// null.
func (e *executor) passesFilters() bool {
	for _, rf := range e.filters {
		lv, lok := rf.lc, !rf.lUnknown
		if rf.f.Left.IsVar() {
			lv, lok = e.binding[rf.f.Left.Var]
		}
		rv, rok := rf.rc, !rf.rUnknown
		if rf.f.Right.IsVar() {
			rv, rok = e.binding[rf.f.Right.Var]
		}
		equal := lok && rok && lv == rv
		if rf.f.Op == OpEq && !equal || rf.f.Op == OpNe && equal {
			return false
		}
	}
	return true
}

// canceled polls the context every ctxCheckInterval calls.
func (e *executor) canceled() error {
	e.ticks++
	if e.ticks%ctxCheckInterval != 0 {
		return nil
	}
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("sparql: query aborted: %w", err)
	}
	return nil
}

func (e *executor) eval(remaining []int) error {
	if len(remaining) == 0 {
		if !e.passesFilters() {
			return nil
		}
		row := make([]rdf.Value, len(e.vars))
		for i, v := range e.vars {
			val, ok := e.binding[v]
			if !ok {
				return fmt.Errorf("sparql: projected variable ?%s is unbound", v)
			}
			row[i] = val
		}
		e.out.add(row)
		return nil
	}
	// Pick the next pattern: the most selective remaining one under the
	// current bindings (adaptive), or simply the next in the planned order.
	best := 0
	if e.adaptive {
		bestCard := 0
		best = -1
		for idx, i := range remaining {
			vals := e.bound(i)
			card := e.st.Cardinality(vals[0], vals[1], vals[2])
			if best < 0 || card < bestCard {
				best, bestCard = idx, card
			}
		}
	}
	i := remaining[best]
	rest := make([]int, 0, len(remaining)-1)
	rest = append(rest, remaining[:best]...)
	rest = append(rest, remaining[best+1:]...)

	vals := e.bound(i)
	terms := e.rps[i].pat.Terms()
	var scanErr error
	e.st.Scan(vals[0], vals[1], vals[2], func(t rdf.Triple) bool {
		if err := e.canceled(); err != nil {
			scanErr = err
			return false
		}
		got := [3]rdf.Value{t.S, t.P, t.O}
		var assigned []string
		consistent := true
		for j, term := range terms {
			if !term.IsVar() {
				continue
			}
			if v, ok := e.binding[term.Var]; ok {
				if v != got[j] {
					consistent = false
					break
				}
			} else {
				e.binding[term.Var] = got[j]
				assigned = append(assigned, term.Var)
			}
		}
		if consistent {
			if err := e.eval(rest); err != nil {
				scanErr = err
			}
		}
		for _, v := range assigned {
			delete(e.binding, v)
		}
		return scanErr == nil
	})
	return scanErr
}

// rowCollector accumulates result rows. Unlimited queries buffer everything
// and sort once at the end; LIMIT k queries instead retain a bounded window
// of the k smallest rows (by the deterministic output order) so evaluation
// never holds more than k rows. Both paths produce byte-identical output:
// sorted, adjacent-deduplicated under DISTINCT, truncated to the limit.
type rowCollector struct {
	rows     [][]rdf.Value
	limit    int
	distinct bool
}

func (c *rowCollector) add(row []rdf.Value) {
	if c.limit <= 0 {
		c.rows = append(c.rows, row)
		return
	}
	// Bounded top-K: rows stays sorted (duplicates adjacent, or absent under
	// DISTINCT) and never exceeds limit entries.
	pos := sort.Search(len(c.rows), func(i int) bool { return !rowLess(c.rows[i], row) })
	if c.distinct && pos < len(c.rows) && rowEqual(c.rows[pos], row) {
		return // already retained
	}
	if pos >= c.limit {
		return // beyond the top-K window
	}
	c.rows = append(c.rows, nil)
	copy(c.rows[pos+1:], c.rows[pos:])
	c.rows[pos] = row
	if len(c.rows) > c.limit {
		c.rows = c.rows[:c.limit]
	}
}

// finish returns the final sorted, deduplicated, truncated row set.
func (c *rowCollector) finish() [][]rdf.Value {
	if c.limit > 0 {
		return c.rows // maintained sorted/deduped/truncated incrementally
	}
	sort.Slice(c.rows, func(i, j int) bool { return rowLess(c.rows[i], c.rows[j]) })
	if c.distinct {
		kept := c.rows[:0]
		for _, row := range c.rows {
			if len(kept) == 0 || !rowEqual(kept[len(kept)-1], row) {
				kept = append(kept, row)
			}
		}
		c.rows = kept
	}
	return c.rows
}

// rowLess is the deterministic output order: lexicographic by value ID.
func rowLess(a, b []rdf.Value) bool {
	for k := range a {
		if a[k] != b[k] {
			return a[k] < b[k]
		}
	}
	return false
}

func rowEqual(a, b []rdf.Value) bool {
	for k := range a {
		if a[k] != b[k] {
			return false
		}
	}
	return true
}

// Render decodes result rows into surface forms.
func (r *Result) Render(dict *rdf.Dictionary) [][]string {
	out := make([][]string, len(r.Rows))
	for i, row := range r.Rows {
		sr := make([]string, len(row))
		for j, v := range row {
			sr[j] = dict.Decode(v)
		}
		out[i] = sr
	}
	return out
}
