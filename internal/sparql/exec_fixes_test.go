package sparql

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/fixtures"
	"repro/internal/rdf"
	"repro/internal/triplestore"
)

var (
	lubmOnce sync.Once
	lubmDS   *rdf.Dataset
)

// lubmTestData memoizes one LUBM dataset for the differential and engine
// suites (the generator is deterministic, so sharing is safe: the store and
// its dictionary are read-only after load).
func lubmTestData(t *testing.T) *rdf.Dataset {
	t.Helper()
	lubmOnce.Do(func() { lubmDS = datagen.LUBM(0.2) })
	return lubmDS
}

// TestFilterUnboundVariableRejected is the regression test for the
// unbound-filter-variable bug: "patrick" is the first term University()
// interns, so its dictionary ID is the zero rdf.Value, and the old code's
// zero-value map read made FILTER(?s = ?ghost) with an unbound ?ghost
// silently behave as FILTER(?s = patrick). Execute must instead reject the
// query (Parse already does; this query is built programmatically).
func TestFilterUnboundVariableRejected(t *testing.T) {
	ds := fixtures.University()
	if id := fixtures.MustID(ds, "patrick"); id != 0 {
		t.Fatalf("fixture changed: first interned term has id %d, test needs 0", id)
	}
	st := triplestore.New(ds)

	q := &Query{
		Vars:     []string{"s"},
		Patterns: []Pattern{{S: Variable("s"), P: Constant("rdf:type"), O: Constant("gradStudent")}},
		Filters:  []Filter{{Left: Variable("s"), Op: OpEq, Right: Variable("ghost")}},
	}
	res, err := Execute(st, q)
	if err == nil {
		// The buggy behavior: exactly the row for id 0 ("patrick") survives.
		t.Fatalf("filter on unbound ?ghost not rejected; returned %v", res.Render(ds.Dict))
	}

	// Same shape through the engine path.
	e := NewEngine(st, EngineConfig{Workers: 2})
	defer e.Close()
	if _, err := e.Execute(context.Background(), q); err == nil {
		t.Fatalf("engine accepted filter on unbound variable")
	}
}

// TestFilterConstantNotInDictionary: a filter comparing against a constant
// the dataset never mentions is never-equal, not an error and not id 0.
func TestFilterConstantNotInDictionary(t *testing.T) {
	ds := fixtures.University()
	st := triplestore.New(ds)

	q := &Query{
		Vars:     []string{"s"},
		Patterns: []Pattern{{S: Variable("s"), P: Constant("rdf:type"), O: Constant("gradStudent")}},
		Filters:  []Filter{{Left: Variable("s"), Op: OpEq, Right: Constant("unicorn")}},
	}
	res, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 0 {
		t.Errorf("= unknown-constant filter matched %v", res.Render(ds.Dict))
	}
	// != against the unknown constant keeps every row.
	q.Filters[0].Op = OpNe
	res, err = Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("!= unknown-constant filter kept %d rows, want 2", len(res.Rows))
	}
}

// TestDistinctDeduplicates pins DISTINCT semantics for the sort-then-
// adjacent-dedupe implementation: duplicate rows collapse, output stays in
// the deterministic sorted order.
func TestDistinctDeduplicates(t *testing.T) {
	ds := rdf.NewDataset()
	ds.Add("a", "knows", "b")
	ds.Add("a", "knows", "c")
	ds.Add("d", "knows", "b")
	ds.Add("d", "knows", "c")
	st := triplestore.New(ds)

	q, err := Parse("SELECT DISTINCT ?o WHERE { ?s knows ?o }")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Render(ds.Dict)
	if len(got) != 2 {
		t.Fatalf("DISTINCT kept %d rows, want 2: %v", len(got), got)
	}
	for i := 1; i < len(res.Rows); i++ {
		if !rowLess(res.Rows[i-1], res.Rows[i]) {
			t.Errorf("DISTINCT output not strictly sorted at %d: %v", i, got)
		}
	}

	// Without DISTINCT all four rows survive.
	q.Distinct = false
	res, err = Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Errorf("non-DISTINCT kept %d rows, want 4", len(res.Rows))
	}
}

// limitDifferentialQueries are the workload for the bounded top-K check:
// shapes with joins, DISTINCT, filters, and varying selectivity.
func limitDifferentialQueries(t *testing.T) []string {
	t.Helper()
	return []string{
		"SELECT ?s ?o WHERE { ?s rdf:type ?o }",
		"SELECT DISTINCT ?o WHERE { ?s rdf:type ?o }",
		"SELECT ?x ?z WHERE { ?x rdf:type GraduateStudent . ?x memberOf ?z }",
		"SELECT DISTINCT ?y WHERE { ?x undergraduateDegreeFrom ?y . ?y rdf:type University }",
		"SELECT ?x ?c WHERE { ?x takesCourse ?c . ?x rdf:type GraduateStudent . FILTER(?x != ?c) }",
	}
}

// TestLimitMatchesUnboundedPath pins the bounded top-K retention byte-
// identical to truncating the unbounded result, across limits smaller than,
// equal to, and larger than the full result size.
func TestLimitMatchesUnboundedPath(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	for _, text := range limitDifferentialQueries(t) {
		q, err := Parse(text)
		if err != nil {
			t.Fatalf("%s: %v", text, err)
		}
		full, err := Execute(st, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(full.Rows) == 0 {
			t.Fatalf("%s: empty result, differential is vacuous", text)
		}
		for _, limit := range []int{1, 2, 7, len(full.Rows), len(full.Rows) + 10} {
			lq := *q
			lq.Limit = limit
			got, err := Execute(st, &lq)
			if err != nil {
				t.Fatal(err)
			}
			want := full.Rows
			if limit < len(want) {
				want = want[:limit]
			}
			if !reflect.DeepEqual(got.Rows, want) {
				t.Errorf("%s LIMIT %d: rows diverge from truncated unbounded path\ngot  %v\nwant %v",
					text, limit, got.Rows, want)
			}
		}
	}
}

// TestExecuteContextCancellation: a pre-cancelled context aborts evaluation
// with the context's error.
func TestExecuteContextCancellation(t *testing.T) {
	ds := lubmTestData(t)
	st := triplestore.New(ds)
	q, err := Parse("SELECT ?s ?p ?o WHERE { ?s ?p ?o . ?s rdf:type ?t }")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ExecuteContext(ctx, st, q); err == nil {
		t.Fatalf("cancelled context did not abort execution")
	}
}
