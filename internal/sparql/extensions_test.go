package sparql

import (
	"strings"
	"testing"

	"repro/internal/fixtures"
	"repro/internal/triplestore"
)

func TestParseDistinctLimitFilter(t *testing.T) {
	q, err := Parse("SELECT DISTINCT ?s WHERE { ?s ?p ?o . FILTER(?s != patrick) } LIMIT 2")
	if err != nil {
		t.Fatal(err)
	}
	if !q.Distinct || q.Limit != 2 || len(q.Filters) != 1 {
		t.Fatalf("parsed %+v", q)
	}
	if q.Filters[0].Op != OpNe || q.Filters[0].Left.Var != "s" || q.Filters[0].Right.Const != "patrick" {
		t.Errorf("filter = %+v", q.Filters[0])
	}
	// Round trip through String.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse of %q: %v", q.String(), err)
	}
	if q2.String() != q.String() {
		t.Errorf("round trip changed query: %q vs %q", q.String(), q2.String())
	}
}

func TestParseExtensionErrors(t *testing.T) {
	bad := []string{
		"SELECT ?s WHERE { ?s ?p ?o } LIMIT x",
		"SELECT ?s WHERE { ?s ?p ?o } LIMIT -1",
		"SELECT ?s WHERE { ?s ?p ?o } TRAILING",
		"SELECT ?s WHERE { ?s ?p ?o . FILTER ?s != ?o }",
		"SELECT ?s WHERE { ?s ?p ?o . FILTER(?s ?o) }",
		"SELECT ?s WHERE { ?s ?p ?o . FILTER(a = b) }",
		"SELECT ?s WHERE { ?s ?p ?o . FILTER(?s = ?nope) }",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestExecuteDistinct(t *testing.T) {
	ds := fixtures.University()
	st := triplestore.New(ds)
	// Subjects of undergradFrom triples: patrick, tim, mike (each once) —
	// but without DISTINCT, projecting ?s over all triples repeats subjects.
	q, _ := Parse("SELECT ?s WHERE { ?s ?p ?o }")
	plain, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	qd, _ := Parse("SELECT DISTINCT ?s WHERE { ?s ?p ?o }")
	distinct, err := Execute(st, qd)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Rows) != 8 {
		t.Errorf("plain projection has %d rows, want 8", len(plain.Rows))
	}
	if len(distinct.Rows) != 4 { // patrick, mike, john, tim
		t.Errorf("distinct projection has %d rows, want 4", len(distinct.Rows))
	}
}

func TestExecuteLimit(t *testing.T) {
	ds := fixtures.University()
	st := triplestore.New(ds)
	q, _ := Parse("SELECT ?s WHERE { ?s ?p ?o } LIMIT 3")
	res, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("LIMIT 3 returned %d rows", len(res.Rows))
	}
}

func TestExecuteFilterNe(t *testing.T) {
	ds := fixtures.University()
	st := triplestore.New(ds)
	// Pairs of students from the same undergrad institution, excluding
	// self-pairs: patrick/tim and tim/patrick share hpi.
	q, err := Parse("SELECT ?a ?b WHERE { ?a undergradFrom ?u . ?b undergradFrom ?u . FILTER(?a != ?b) }")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("got %d rows, want 2: %v", len(res.Rows), res.Render(ds.Dict))
	}
	for _, row := range res.Render(ds.Dict) {
		if row[0] == row[1] {
			t.Errorf("self pair %v survived the filter", row)
		}
	}
}

func TestExecuteFilterEqConstant(t *testing.T) {
	ds := fixtures.University()
	st := triplestore.New(ds)
	q, err := Parse("SELECT ?o WHERE { ?s undergradFrom ?o . FILTER(?o = hpi) }")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("got %d rows, want 2 (patrick and tim)", len(res.Rows))
	}
	// A constant absent from the data: equality can never hold.
	q2, _ := Parse("SELECT ?o WHERE { ?s undergradFrom ?o . FILTER(?o = nowhere) }")
	res2, err := Execute(st, q2)
	if err != nil || len(res2.Rows) != 0 {
		t.Errorf("unknown-constant equality returned %d rows, err=%v", len(res2.Rows), err)
	}
	// ... and inequality always holds.
	q3, _ := Parse("SELECT ?o WHERE { ?s undergradFrom ?o . FILTER(?o != nowhere) }")
	res3, err := Execute(st, q3)
	if err != nil || len(res3.Rows) != 3 {
		t.Errorf("unknown-constant inequality returned %d rows, err=%v", len(res3.Rows), err)
	}
}

func TestMinimizePreservesFiltersAndLimit(t *testing.T) {
	ds := fixtures.University()
	q, err := Parse("SELECT DISTINCT ?d WHERE { ?s rdf:type gradStudent . ?s memberOf ?d . FILTER(?d != csd) } LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	min := Minimize(q, nil, ds.Dict)
	if !min.Distinct || min.Limit != 5 || len(min.Filters) != 1 {
		t.Errorf("minimization dropped query modifiers: %s", min)
	}
	if !strings.Contains(min.String(), "FILTER") {
		t.Errorf("rendering lost the filter: %s", min)
	}
}
