package sparql

import (
	"repro/internal/cind"
	"repro/internal/rdf"
)

// Minimize removes query triple patterns that discovered CINDs prove
// redundant (§1, App. B): if pattern B guarantees, through a CIND, that
// every binding of a shared variable also has a match for pattern A, then A
// can be dropped without changing the result.
//
// A pattern A is removable when
//
//   - A has exactly one variable (at position α; its other positions are
//     constants, forming a unary or binary condition φA), and that variable
//     occurs in another kept pattern B at position β whose other positions
//     include at least one constant (forming φB), and
//   - the CIND (β, φB) ⊆ (α, φA) follows from the discovery result: it is
//     listed, implied by a listed CIND (dependent/referenced implication),
//     implied by an association rule, or trivially true —
//
// because then every value the variable takes in B's matches is contained in
// the interpretation of (α, φA), i.e. pattern A matches it.
//
// Patterns are examined in order; a pattern already removed cannot justify
// removing another one (the justifying pattern must survive).
func Minimize(q *Query, res *cind.Result, dict *rdf.Dictionary) *Query {
	kb := newKnowledge(res, dict)
	kept := append([]Pattern(nil), q.Patterns...)

	changed := true
	for changed {
		changed = false
		for i := 0; i < len(kept); i++ {
			if len(kept) == 1 {
				break // never empty the graph pattern
			}
			a := kept[i]
			varName, alpha, condA, ok := soleVariable(a, dict)
			if !ok {
				continue
			}
			removable := false
			for j, b := range kept {
				if j == i {
					continue
				}
				if impliesPattern(kb, b, varName, alpha, condA, dict) {
					removable = true
					break
				}
			}
			if removable {
				kept = append(kept[:i], kept[i+1:]...)
				changed = true
				i--
			}
		}
	}
	out := *q
	out.Patterns = kept
	return &out
}

// soleVariable checks that the pattern has exactly one variable and returns
// it with its position and the condition over the constant positions.
func soleVariable(p Pattern, dict *rdf.Dictionary) (string, rdf.Attr, cind.Condition, bool) {
	terms := p.Terms()
	varAt := -1
	for i, t := range terms {
		if t.IsVar() {
			if varAt >= 0 {
				return "", 0, cind.Condition{}, false // two variables
			}
			varAt = i
		}
	}
	if varAt < 0 {
		return "", 0, cind.Condition{}, false // no variable
	}
	cond, ok := conditionOf(terms, varAt, dict)
	if !ok {
		return "", 0, cind.Condition{}, false
	}
	return terms[varAt].Var, rdf.Attr(varAt), cond, true
}

// conditionOf builds the condition over the constant positions of a pattern,
// excluding position exclude. It fails when a constant is not in the
// dictionary (the pattern can then never match, and dropping it would change
// semantics) or no constant remains.
func conditionOf(terms [3]Term, exclude int, dict *rdf.Dictionary) (cind.Condition, bool) {
	var conds []cind.Condition
	for i, t := range terms {
		if i == exclude || t.IsVar() {
			continue
		}
		id, ok := dict.Lookup(t.Const)
		if !ok {
			return cind.Condition{}, false
		}
		conds = append(conds, cind.Unary(rdf.Attr(i), id))
	}
	switch len(conds) {
	case 1:
		return conds[0], true
	case 2:
		return cind.Binary(conds[0].A1, conds[0].V1, conds[1].A1, conds[1].V1), true
	}
	return cind.Condition{}, false
}

// impliesPattern checks whether pattern b justifies dropping a pattern whose
// sole variable varName sits at position alpha under condition condA: b must
// use the variable at some position beta, contribute a condition φB over its
// constant positions, and the CIND (β, φB) ⊆ (α, φA) must follow from the
// knowledge base.
func impliesPattern(kb *knowledge, b Pattern, varName string, alpha rdf.Attr, condA cind.Condition, dict *rdf.Dictionary) bool {
	terms := b.Terms()
	for i, t := range terms {
		if !t.IsVar() || t.Var != varName {
			continue
		}
		condB, ok := conditionOf(terms, i, dict)
		if !ok {
			continue
		}
		if condB.Uses(alpha) {
			// Guard against positions colliding; conditions are over the
			// other pattern's own attributes, this cannot collide — the
			// projection attributes differ per pattern.
			_ = condB
		}
		inc := cind.Inclusion{
			Dep: cind.Capture{Proj: rdf.Attr(i), Cond: condB},
			Ref: cind.Capture{Proj: alpha, Cond: condA},
		}
		if kb.entails(inc) {
			return true
		}
	}
	return false
}

// knowledge indexes a discovery result for entailment checks.
type knowledge struct {
	cinds map[cind.Inclusion]struct{}
	ars   map[[2]cind.Condition]struct{}
}

func newKnowledge(res *cind.Result, dict *rdf.Dictionary) *knowledge {
	kb := &knowledge{
		cinds: make(map[cind.Inclusion]struct{}),
		ars:   make(map[[2]cind.Condition]struct{}),
	}
	if res == nil {
		return kb
	}
	for _, c := range res.CINDs {
		kb.cinds[c.Inclusion] = struct{}{}
	}
	for _, r := range res.ARs {
		kb.ars[[2]cind.Condition{r.If, r.Then}] = struct{}{}
		// The AR's implied CIND and its equivalence are materialized on
		// demand in normalize/entails.
	}
	return kb
}

// normalize maps a condition to its AR-quotient representative: a binary
// condition embedding a rule collapses to the rule's If side (the two
// captures have identical interpretations, §5.1 equivalence pruning).
func (kb *knowledge) normalize(c cind.Condition) cind.Condition {
	if !c.IsBinary() {
		return c
	}
	parts := c.UnaryParts()
	if _, ok := kb.ars[[2]cind.Condition{parts[0], parts[1]}]; ok {
		return parts[0]
	}
	if _, ok := kb.ars[[2]cind.Condition{parts[1], parts[0]}]; ok {
		return parts[1]
	}
	return c
}

// entails reports whether the inclusion follows from the result set: after
// AR-normalizing both conditions it must be trivial, listed, or implied by a
// listed CIND through dependent/referenced implication.
func (kb *knowledge) entails(inc cind.Inclusion) bool {
	dep := cind.Capture{Proj: inc.Dep.Proj, Cond: kb.normalize(inc.Dep.Cond)}
	ref := cind.Capture{Proj: inc.Ref.Proj, Cond: kb.normalize(inc.Ref.Cond)}
	if dep.Cond.Uses(dep.Proj) || ref.Cond.Uses(ref.Proj) {
		return false // normalization collapsed onto the projection attribute
	}
	norm := cind.Inclusion{Dep: dep, Ref: ref}
	if norm.Trivial() {
		return true
	}
	if _, ok := kb.cinds[norm]; ok {
		return true
	}
	for listed := range kb.cinds {
		if listed.Implies(norm) {
			return true
		}
	}
	return false
}
