package sparql

import (
	"context"
	"strconv"
	"strings"

	"repro/internal/cind"
	"repro/internal/triplestore"
)

// Plan is a reusable execution strategy for one BGP shape: the indices of
// the patterns that survive CIND minimization, arranged in a statically
// chosen greedy join order. A Plan is immutable after PlanQuery returns and
// valid for any query with the same shape key against the same store, which
// is what lets sparql.Engine cache it.
type Plan struct {
	// Order lists indices into the planned query's Patterns, in execution
	// order. Patterns minimized away do not appear.
	Order []int
	// Minimized reports whether CIND-based minimization dropped patterns.
	Minimized bool
}

// ShapeKey canonicalizes a query's BGP shape for plan caching: variables are
// renumbered by first occurrence (so ?x/?y and ?a/?b queries with the same
// structure share a key), constants become their dictionary IDs (an unknown
// constant gets a sentinel — sound, because the store's dictionary is
// read-only after load, so "unknown" never changes), and filters contribute
// their operator and canonical operands. DISTINCT and LIMIT are excluded:
// they change post-processing, not the join plan.
func ShapeKey(st *triplestore.Store, q *Query) string {
	var b strings.Builder
	varID := map[string]int{}
	writeTerm := func(t Term) {
		if t.IsVar() {
			id, ok := varID[t.Var]
			if !ok {
				id = len(varID)
				varID[t.Var] = id
			}
			b.WriteByte('?')
			b.WriteString(strconv.Itoa(id))
			return
		}
		if id, ok := st.Dict().Lookup(t.Const); ok {
			b.WriteString(strconv.FormatUint(uint64(id), 10))
		} else {
			b.WriteByte('!') // never-matching constant
		}
	}
	for _, p := range q.Patterns {
		for _, t := range p.Terms() {
			writeTerm(t)
			b.WriteByte(' ')
		}
		b.WriteByte('.')
	}
	for _, f := range q.Filters {
		b.WriteByte('F')
		writeTerm(f.Left)
		b.WriteString(string(f.Op))
		writeTerm(f.Right)
	}
	return b.String()
}

// boundVarDiscount is the factor by which a scan position already bound by
// an earlier join step is assumed to shrink a pattern's match count. The
// static planner cannot know the true per-binding bucket size up front (the
// adaptive executor re-estimates at every recursion step instead), so it
// applies this fixed discount per bound variable position.
const boundVarDiscount = 16

// PlanQuery builds a static plan for q: CIND-based minimization first (when
// res is non-nil), then a greedy join order over the kept patterns using the
// store's O(1) cardinality estimates. The returned order indexes into
// q.Patterns, so the plan applies to any same-shaped query.
func PlanQuery(st *triplestore.Store, q *Query, res *cind.Result) *Plan {
	kept := make([]int, len(q.Patterns))
	for i := range kept {
		kept[i] = i
	}
	minimized := false
	if res != nil && len(q.Patterns) > 1 {
		min := Minimize(q, res, st.Dict())
		if len(min.Patterns) < len(q.Patterns) {
			minimized = true
			// Map the surviving patterns back to their original indices:
			// Minimize preserves relative order, so a single forward walk
			// matches each kept pattern to its source.
			kept = kept[:0]
			next := 0
			for _, p := range min.Patterns {
				for next < len(q.Patterns) && q.Patterns[next] != p {
					next++
				}
				kept = append(kept, next)
				next++
			}
		}
	}

	rps, ok := resolvePatterns(st, q.Patterns)
	if !ok {
		// Some constant never occurs; any order yields the empty result.
		return &Plan{Order: kept, Minimized: minimized}
	}

	// Static greedy order: repeatedly take the cheapest remaining pattern,
	// where cost is the constant-bound cardinality estimate discounted once
	// per variable position an earlier step already binds.
	order := make([]int, 0, len(kept))
	used := make(map[int]bool, len(kept))
	bound := map[string]bool{}
	for len(order) < len(kept) {
		best, bestCost := -1, 0.0
		for _, i := range kept {
			if used[i] {
				continue
			}
			vals := rps[i].vals
			cost := float64(st.Cardinality(vals[0], vals[1], vals[2]))
			for _, t := range rps[i].pat.Terms() {
				if t.IsVar() && bound[t.Var] {
					cost /= boundVarDiscount
				}
			}
			if best < 0 || cost < bestCost {
				best, bestCost = i, cost
			}
		}
		used[best] = true
		order = append(order, best)
		for _, v := range rps[best].pat.Vars() {
			bound[v] = true
		}
	}
	return &Plan{Order: order, Minimized: minimized}
}

// ExecutePlan evaluates q following a previously built plan: the plan's
// pattern subset and join order are used as-is, skipping both minimization
// and per-step greedy planning. Projection is still derived from the full
// query, so results are identical to ExecuteContext on the unplanned query
// (minimization is semantics-preserving by construction).
func ExecutePlan(ctx context.Context, st *triplestore.Store, q *Query, plan *Plan) (*Result, error) {
	return executeOrdered(ctx, st, q, plan.Order, false)
}
