// Package sparql implements the SPARQL subset the query-minimization use
// case needs (Fig. 14, App. B): SELECT queries over basic graph patterns,
// evaluated with index nested loops against a triplestore.Store, plus the
// CIND-based query minimizer that removes triple patterns implied by
// discovered CINDs and association rules.
package sparql

import (
	"fmt"
	"strconv"
	"strings"
)

// Term is one position of a triple pattern: either a variable ("?x") or a
// constant in the dataset's surface form.
type Term struct {
	Var   string // non-empty for variables, without the leading '?'
	Const string // surface form for constants
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term in query syntax.
func (t Term) String() string {
	if t.IsVar() {
		return "?" + t.Var
	}
	return t.Const
}

// Variable builds a variable term.
func Variable(name string) Term { return Term{Var: name} }

// Constant builds a constant term.
func Constant(value string) Term { return Term{Const: value} }

// Pattern is a triple pattern.
type Pattern struct {
	S, P, O Term
}

// String renders the pattern in query syntax.
func (p Pattern) String() string {
	return fmt.Sprintf("%s %s %s", p.S, p.P, p.O)
}

// Terms returns the pattern's terms in s, p, o order.
func (p Pattern) Terms() [3]Term { return [3]Term{p.S, p.P, p.O} }

// Vars returns the distinct variable names used in the pattern.
func (p Pattern) Vars() []string {
	var out []string
	seen := map[string]bool{}
	for _, t := range p.Terms() {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// FilterOp is a comparison operator in a FILTER clause.
type FilterOp string

const (
	OpEq FilterOp = "="
	OpNe FilterOp = "!="
)

// Filter is a simple comparison constraint between two terms, at least one
// of which is a variable.
type Filter struct {
	Left  Term
	Op    FilterOp
	Right Term
}

// String renders the filter in query syntax.
func (f Filter) String() string {
	return fmt.Sprintf("FILTER(%s %s %s)", f.Left, f.Op, f.Right)
}

// Query is a SELECT query over a basic graph pattern with optional FILTER
// constraints, DISTINCT, and LIMIT.
type Query struct {
	// Vars lists the projected variables, in order. Empty means SELECT *.
	Vars []string
	// Distinct deduplicates result rows.
	Distinct bool
	// Patterns is the basic graph pattern.
	Patterns []Pattern
	// Filters constrain bindings.
	Filters []Filter
	// Limit caps the number of result rows; 0 means unlimited.
	Limit int
}

// String renders the query in SPARQL syntax.
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString("SELECT")
	if q.Distinct {
		b.WriteString(" DISTINCT")
	}
	if len(q.Vars) == 0 {
		b.WriteString(" *")
	}
	for _, v := range q.Vars {
		b.WriteString(" ?" + v)
	}
	b.WriteString(" WHERE { ")
	for i, p := range q.Patterns {
		if i > 0 {
			b.WriteString(" . ")
		}
		b.WriteString(p.String())
	}
	for _, f := range q.Filters {
		b.WriteString(" . " + f.String())
	}
	b.WriteString(" }")
	if q.Limit > 0 {
		fmt.Fprintf(&b, " LIMIT %d", q.Limit)
	}
	return b.String()
}

// Parse reads the SPARQL subset: SELECT [DISTINCT] ?v ... WHERE { t1 . t2 .
// FILTER(?x != ?y) ... } [LIMIT n], with variables (?name) and
// whitespace-free constants. Literals with spaces must be written with their
// quotes and no internal " . " sequence.
func Parse(input string) (*Query, error) {
	rest := strings.TrimSpace(input)
	upper := strings.ToUpper(rest)
	if !strings.HasPrefix(upper, "SELECT") {
		return nil, fmt.Errorf("sparql: query must start with SELECT")
	}
	rest = strings.TrimSpace(rest[len("SELECT"):])
	whereAt := strings.Index(strings.ToUpper(rest), "WHERE")
	if whereAt < 0 {
		return nil, fmt.Errorf("sparql: missing WHERE")
	}
	head, body := rest[:whereAt], strings.TrimSpace(rest[whereAt+len("WHERE"):])

	q := &Query{}
	for _, tok := range strings.Fields(head) {
		switch {
		case tok == "*":
		case strings.EqualFold(tok, "DISTINCT"):
			q.Distinct = true
		case strings.HasPrefix(tok, "?"):
			q.Vars = append(q.Vars, tok[1:])
		default:
			return nil, fmt.Errorf("sparql: bad projection %q", tok)
		}
	}

	// A LIMIT clause may follow the closing brace.
	if brace := strings.LastIndexByte(body, '}'); brace >= 0 && brace < len(body)-1 {
		tail := strings.TrimSpace(body[brace+1:])
		body = body[:brace+1]
		toks := strings.Fields(tail)
		if len(toks) != 2 || !strings.EqualFold(toks[0], "LIMIT") {
			return nil, fmt.Errorf("sparql: unexpected trailer %q", tail)
		}
		n, err := strconv.Atoi(toks[1])
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sparql: bad LIMIT %q", toks[1])
		}
		q.Limit = n
	}

	if !strings.HasPrefix(body, "{") || !strings.HasSuffix(body, "}") {
		return nil, fmt.Errorf("sparql: WHERE clause must be braced")
	}
	body = strings.TrimSpace(body[1 : len(body)-1])
	if body == "" {
		return nil, fmt.Errorf("sparql: empty graph pattern")
	}
	for _, stmt := range strings.Split(body, " . ") {
		stmt = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(stmt), "."))
		if stmt == "" {
			continue
		}
		if hasPrefixFold(stmt, "FILTER") {
			f, err := parseFilter(stmt)
			if err != nil {
				return nil, err
			}
			q.Filters = append(q.Filters, f)
			continue
		}
		toks := strings.Fields(stmt)
		if len(toks) != 3 {
			return nil, fmt.Errorf("sparql: pattern %q does not have three terms", stmt)
		}
		var terms [3]Term
		for i, tok := range toks {
			var err error
			if terms[i], err = parseTermToken(tok); err != nil {
				return nil, fmt.Errorf("sparql: %w in %q", err, stmt)
			}
		}
		q.Patterns = append(q.Patterns, Pattern{S: terms[0], P: terms[1], O: terms[2]})
	}
	if len(q.Patterns) == 0 {
		return nil, fmt.Errorf("sparql: empty graph pattern")
	}
	// Filters may only mention variables the pattern binds.
	bound := map[string]bool{}
	for _, p := range q.Patterns {
		for _, v := range p.Vars() {
			bound[v] = true
		}
	}
	for _, f := range q.Filters {
		for _, t := range []Term{f.Left, f.Right} {
			if t.IsVar() && !bound[t.Var] {
				return nil, fmt.Errorf("sparql: filter uses unbound variable ?%s", t.Var)
			}
		}
	}
	return q, nil
}

func parseTermToken(tok string) (Term, error) {
	if strings.HasPrefix(tok, "?") {
		if len(tok) == 1 {
			return Term{}, fmt.Errorf("empty variable name")
		}
		return Variable(tok[1:]), nil
	}
	return Constant(tok), nil
}

// parseFilter reads "FILTER(<term> <op> <term>)".
func parseFilter(stmt string) (Filter, error) {
	inner := strings.TrimSpace(stmt[len("FILTER"):])
	if !strings.HasPrefix(inner, "(") || !strings.HasSuffix(inner, ")") {
		return Filter{}, fmt.Errorf("sparql: filter %q must be parenthesized", stmt)
	}
	inner = strings.TrimSpace(inner[1 : len(inner)-1])
	var op FilterOp
	var opAt int
	if i := strings.Index(inner, "!="); i >= 0 {
		op, opAt = OpNe, i
	} else if i := strings.IndexByte(inner, '='); i >= 0 {
		op, opAt = OpEq, i
	} else {
		return Filter{}, fmt.Errorf("sparql: filter %q lacks a comparison", stmt)
	}
	left, err := parseTermToken(strings.TrimSpace(inner[:opAt]))
	if err != nil {
		return Filter{}, fmt.Errorf("sparql: filter: %w", err)
	}
	right, err := parseTermToken(strings.TrimSpace(inner[opAt+len(op):]))
	if err != nil {
		return Filter{}, fmt.Errorf("sparql: filter: %w", err)
	}
	if !left.IsVar() && !right.IsVar() {
		return Filter{}, fmt.Errorf("sparql: filter %q compares two constants", stmt)
	}
	return Filter{Left: left, Op: op, Right: right}, nil
}

func hasPrefixFold(s, prefix string) bool {
	return len(s) >= len(prefix) && strings.EqualFold(s[:len(prefix)], prefix)
}
