package sparql

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/fixtures"
	"repro/internal/rdf"
	"repro/internal/triplestore"
)

func TestParseBasics(t *testing.T) {
	q, err := Parse("SELECT ?d ?u WHERE {?s rdf:type gradStudent . ?s memberOf ?d . ?s undergradFrom ?u .}")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.Vars, []string{"d", "u"}) {
		t.Errorf("Vars = %v", q.Vars)
	}
	if len(q.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3", len(q.Patterns))
	}
	if q.Patterns[0].S.Var != "s" || q.Patterns[0].P.Const != "rdf:type" || q.Patterns[0].O.Const != "gradStudent" {
		t.Errorf("pattern 0 = %+v", q.Patterns[0])
	}
	// Round trip through String and Parse again.
	q2, err := Parse(q.String())
	if err != nil {
		t.Fatalf("re-parse of %q failed: %v", q.String(), err)
	}
	if !reflect.DeepEqual(q, q2) {
		t.Errorf("round trip changed query: %v vs %v", q, q2)
	}
}

func TestParseSelectStar(t *testing.T) {
	q, err := Parse("SELECT * WHERE { ?s ?p ?o }")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Vars) != 0 || len(q.Patterns) != 1 {
		t.Errorf("parsed %+v", q)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"ASK WHERE { ?s ?p ?o }",
		"SELECT ?x { ?s ?p ?o }",
		"SELECT ?x WHERE ?s ?p ?o",
		"SELECT ?x WHERE { }",
		"SELECT ?x WHERE { ?s ?p }",
		"SELECT bogus WHERE { ?s ?p ?o }",
		"SELECT ?x WHERE { ?s ? ?o }",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("no error for %q", in)
		}
	}
}

func TestExecuteTable1(t *testing.T) {
	ds := fixtures.University()
	st := triplestore.New(ds)

	// The 2-join query from §1: departments and undergrad institutions of
	// graduate students.
	q, err := Parse("SELECT ?d ?u WHERE {?s rdf:type gradStudent . ?s memberOf ?d . ?s undergradFrom ?u .}")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	got := res.Render(ds.Dict)
	want := map[[2]string]bool{{"csd", "hpi"}: true, {"biod", "cmu"}: true}
	if len(got) != 2 {
		t.Fatalf("rows = %v, want 2 rows", got)
	}
	for _, row := range got {
		if !want[[2]string{row[0], row[1]}] {
			t.Errorf("unexpected row %v", row)
		}
	}
}

func TestExecuteUnknownConstant(t *testing.T) {
	ds := fixtures.University()
	st := triplestore.New(ds)
	q, _ := Parse("SELECT ?s WHERE { ?s rdf:type unicorn }")
	res, err := Execute(st, q)
	if err != nil || len(res.Rows) != 0 {
		t.Errorf("unknown constant: rows=%d err=%v", len(res.Rows), err)
	}
}

func TestExecuteRepeatedVariable(t *testing.T) {
	ds := rdf.NewDataset()
	ds.Add("a", "knows", "a")
	ds.Add("a", "knows", "b")
	st := triplestore.New(ds)
	q, _ := Parse("SELECT ?x WHERE { ?x knows ?x }")
	res, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || ds.Dict.Decode(res.Rows[0][0]) != "a" {
		t.Errorf("self-loop query returned %v", res.Render(ds.Dict))
	}
}

// TestMinimizeSection1Example reproduces the §1 example: knowing
// (s, p=memberOf) ⊆ (s, p=rdf:type ∧ o=gradStudent), the first query triple
// of the 2-join query can be removed without changing results.
func TestMinimizeSection1Example(t *testing.T) {
	ds := fixtures.University()
	st := triplestore.New(ds)
	res, _ := core.Discover(ds, core.Config{Support: 2, Workers: 2})

	q, _ := Parse("SELECT ?d ?u WHERE {?s rdf:type gradStudent . ?s memberOf ?d . ?s undergradFrom ?u .}")
	min := Minimize(q, res, ds.Dict)
	if len(min.Patterns) >= len(q.Patterns) {
		t.Fatalf("minimization removed nothing: %s", min)
	}
	// The rdf:type pattern must be gone.
	for _, p := range min.Patterns {
		if !p.P.IsVar() && p.P.Const == "rdf:type" {
			t.Errorf("rdf:type pattern survived: %s", min)
		}
	}
	// Results must be identical.
	orig, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Execute(st, min)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig.Rows, opt.Rows) {
		t.Errorf("minimized query changed results:\norig %v\nmin  %v",
			orig.Render(ds.Dict), opt.Render(ds.Dict))
	}
}

// LUBMQ2 is the Fig. 14 query: graduate students whose department belongs to
// the university they got their undergraduate degree from.
const LUBMQ2 = `SELECT ?x ?y ?z WHERE {
?x rdf:type GraduateStudent . ?y rdf:type University . ?z rdf:type Department . ?x memberOf ?z . ?z subOrganizationOf ?y . ?x undergraduateDegreeFrom ?y }`

// TestMinimizeLUBMQ2 is the Fig. 14 reproduction at test scale: CINDs
// discovered on LUBM reduce Q2 from six query triples to three, with
// identical results.
func TestMinimizeLUBMQ2(t *testing.T) {
	// The support threshold must not exceed the number of universities: the
	// CIND that eliminates "?y rdf:type University" projects universities and
	// has support equal to their count.
	ds := datagen.LUBM(0.2)
	st := triplestore.New(ds)
	res, _ := core.Discover(ds, core.Config{Support: 2, Workers: 2})

	q, err := Parse(strings.ReplaceAll(LUBMQ2, "\n", " "))
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Patterns) != 6 {
		t.Fatalf("Q2 has %d patterns, want 6", len(q.Patterns))
	}
	min := Minimize(q, res, ds.Dict)
	if len(min.Patterns) != 3 {
		t.Errorf("minimized Q2 has %d patterns, the paper reaches 3: %s", len(min.Patterns), min)
	}
	orig, err := Execute(st, q)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Execute(st, min)
	if err != nil {
		t.Fatal(err)
	}
	if len(orig.Rows) == 0 {
		t.Fatalf("Q2 has no results on generated LUBM; generator broken")
	}
	if !reflect.DeepEqual(orig.Rows, opt.Rows) {
		t.Errorf("minimized Q2 changed results: %d vs %d rows", len(orig.Rows), len(opt.Rows))
	}
}

// TestMinimizeKeepsUnjustifiedPatterns: without discovery knowledge nothing
// may be removed, and the last pattern never disappears.
func TestMinimizeKeepsUnjustifiedPatterns(t *testing.T) {
	ds := fixtures.University()
	q, _ := Parse("SELECT ?d WHERE {?s rdf:type gradStudent . ?s memberOf ?d }")
	min := Minimize(q, nil, ds.Dict)
	if len(min.Patterns) != 2 {
		t.Errorf("minimization without knowledge removed patterns: %s", min)
	}
}
