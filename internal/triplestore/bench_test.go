package triplestore

import (
	"testing"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

func BenchmarkNewIndexes(b *testing.B) {
	ds := datagen.LUBM(0.3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		New(ds)
	}
}

func BenchmarkScanBoundPredicate(b *testing.B) {
	ds := datagen.LUBM(0.3)
	st := New(ds)
	p, ok := ds.Dict.Lookup("memberOf")
	if !ok {
		b.Fatal("memberOf missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		st.Scan(Wildcard, p, Wildcard, func(rdf.Triple) bool {
			n++
			return true
		})
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}
