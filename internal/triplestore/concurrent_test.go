package triplestore

import (
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/rdf"
)

// scanCount exhaustively counts matches for a pattern via Scan.
func scanCount(st *Store, s, p, o rdf.Value) int {
	n := 0
	st.Scan(s, p, o, func(rdf.Triple) bool {
		n++
		return true
	})
	return n
}

// TestCardinalityConsistentWithScan checks, for every pattern shape and
// every constant combination occurring in the dataset, that Cardinality
// agrees with an exhaustive Scan count — the precomputed per-key totals must
// be indistinguishable from walking the secondary maps.
func TestCardinalityConsistentWithScan(t *testing.T) {
	ds := datagen.LUBM(0.05)
	st := New(ds)
	w := Wildcard

	if got, want := st.Cardinality(w, w, w), ds.Size(); got != want {
		t.Fatalf("Cardinality(?,?,?) = %d, want %d", got, want)
	}
	for _, tr := range ds.Triples {
		shapes := [][3]rdf.Value{
			{tr.S, w, w},
			{w, tr.P, w},
			{w, w, tr.O},
			{tr.S, tr.P, w},
			{w, tr.P, tr.O},
			{tr.S, w, tr.O},
			{tr.S, tr.P, tr.O},
		}
		for _, sh := range shapes {
			got := st.Cardinality(sh[0], sh[1], sh[2])
			want := scanCount(st, sh[0], sh[1], sh[2])
			if got != want {
				t.Fatalf("Cardinality(%v) = %d, Scan counts %d", sh, got, want)
			}
		}
	}

	// Values absent from the respective position must estimate zero.
	unknown := rdf.Value(0xFFFFFFF0)
	for _, sh := range [][3]rdf.Value{{unknown, w, w}, {w, unknown, w}, {w, w, unknown}} {
		if got := st.Cardinality(sh[0], sh[1], sh[2]); got != 0 {
			t.Errorf("Cardinality of absent value %v = %d, want 0", sh, got)
		}
	}
}

// TestStoreConcurrentReaders drives Scan, Cardinality, Contains, Len, and
// Dict lookups from many goroutines at once. Under -race this verifies the
// read-only-after-load invariant the concurrent query engine depends on: a
// fully constructed Store must tolerate unlimited parallel readers.
func TestStoreConcurrentReaders(t *testing.T) {
	ds := datagen.LUBM(0.05)
	st := New(ds)
	w := Wildcard

	const goroutines = 12
	const rounds = 40
	sample := ds.Triples
	if len(sample) > 100 {
		sample = sample[:100]
	}
	serialTotal := 0
	for _, tr := range sample {
		serialTotal += scanCount(st, tr.S, w, w) + st.Cardinality(w, tr.P, w)
	}

	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				total := 0
				for _, tr := range sample {
					total += scanCount(st, tr.S, w, w) + st.Cardinality(w, tr.P, w)
					if !st.Contains(tr.S, tr.P, tr.O) {
						errs <- "Contains lost a triple under concurrency"
						return
					}
					if st.Dict().Decode(tr.S) == "" {
						errs <- "Decode returned empty under concurrency"
						return
					}
				}
				if total != serialTotal {
					errs <- "concurrent scan totals diverged from serial"
					return
				}
				if st.Len() != ds.Size() {
					errs <- "Len changed under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
