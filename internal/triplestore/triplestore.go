// Package triplestore is a dictionary-encoded, index-backed in-memory triple
// store — the stand-in for RDF-3X in the query-minimization experiment
// (Fig. 14, App. B). It maintains the three classic permutation indexes
// (SPO, POS, OSP) so that every triple-pattern shape resolves through an
// index, and exposes a lookup interface the SPARQL-subset engine drives with
// index nested loops.
package triplestore

import (
	"repro/internal/rdf"
)

// Wildcard marks an unbound pattern position.
const Wildcard = rdf.NoValue

// Store is an immutable indexed triple set.
//
// Read-only-after-load invariant: New builds every index and statistic before
// returning, and no method mutates the store afterwards — Scan, Cardinality,
// Contains, Dict, and Len perform map/slice reads only, and the shared
// Dictionary is likewise only read (Lookup/Decode). A fully constructed Store
// is therefore safe for unlimited concurrent readers with no locking; the
// concurrent query engine (sparql.Engine) and its race-detector suites rely
// on this. Callers must not mutate the source dataset's dictionary (e.g. by
// interning new terms) while readers are active.
type Store struct {
	dict *rdf.Dictionary
	size int
	spo  map[rdf.Value]map[rdf.Value][]rdf.Value
	pos  map[rdf.Value]map[rdf.Value][]rdf.Value
	osp  map[rdf.Value]map[rdf.Value][]rdf.Value
	// Per-key triple totals for the three singly-bound pattern shapes,
	// precomputed at New time so Cardinality never walks a secondary map
	// inside the planner's inner loop.
	sTotal map[rdf.Value]int
	pTotal map[rdf.Value]int
	oTotal map[rdf.Value]int
}

// New indexes a dataset. The store shares the dataset's dictionary.
func New(ds *rdf.Dataset) *Store {
	st := &Store{
		dict:   ds.Dict,
		size:   ds.Size(),
		spo:    make(map[rdf.Value]map[rdf.Value][]rdf.Value),
		pos:    make(map[rdf.Value]map[rdf.Value][]rdf.Value),
		osp:    make(map[rdf.Value]map[rdf.Value][]rdf.Value),
		sTotal: make(map[rdf.Value]int),
		pTotal: make(map[rdf.Value]int),
		oTotal: make(map[rdf.Value]int),
	}
	insert := func(idx map[rdf.Value]map[rdf.Value][]rdf.Value, a, b, c rdf.Value) {
		m, ok := idx[a]
		if !ok {
			m = make(map[rdf.Value][]rdf.Value)
			idx[a] = m
		}
		m[b] = append(m[b], c)
	}
	for _, t := range ds.Triples {
		insert(st.spo, t.S, t.P, t.O)
		insert(st.pos, t.P, t.O, t.S)
		insert(st.osp, t.O, t.S, t.P)
		st.sTotal[t.S]++
		st.pTotal[t.P]++
		st.oTotal[t.O]++
	}
	return st
}

// Dict returns the term dictionary.
func (st *Store) Dict() *rdf.Dictionary { return st.dict }

// Len returns the number of indexed triples.
func (st *Store) Len() int { return st.size }

// Scan invokes fn for every triple matching the pattern, where Wildcard
// positions match anything. It picks the index whose bound prefix is
// longest, so fully- and doubly-bound patterns never scan. Returning false
// from fn stops the scan.
func (st *Store) Scan(s, p, o rdf.Value, fn func(rdf.Triple) bool) {
	switch {
	case s != Wildcard && p != Wildcard:
		for _, ov := range st.spo[s][p] {
			if o != Wildcard && ov != o {
				continue
			}
			if !fn(rdf.Triple{S: s, P: p, O: ov}) {
				return
			}
		}
	case p != Wildcard && o != Wildcard:
		for _, sv := range st.pos[p][o] {
			if !fn(rdf.Triple{S: sv, P: p, O: o}) {
				return
			}
		}
	case s != Wildcard && o != Wildcard:
		for _, pv := range st.osp[o][s] {
			if !fn(rdf.Triple{S: s, P: pv, O: o}) {
				return
			}
		}
	case s != Wildcard:
		for pv, os := range st.spo[s] {
			for _, ov := range os {
				if !fn(rdf.Triple{S: s, P: pv, O: ov}) {
					return
				}
			}
		}
	case p != Wildcard:
		for ov, ss := range st.pos[p] {
			for _, sv := range ss {
				if !fn(rdf.Triple{S: sv, P: p, O: ov}) {
					return
				}
			}
		}
	case o != Wildcard:
		for sv, ps := range st.osp[o] {
			for _, pv := range ps {
				if !fn(rdf.Triple{S: sv, P: pv, O: o}) {
					return
				}
			}
		}
	default:
		for sv, po := range st.spo {
			for pv, os := range po {
				for _, ov := range os {
					if !fn(rdf.Triple{S: sv, P: pv, O: ov}) {
						return
					}
				}
			}
		}
	}
}

// Cardinality estimates how many triples match the pattern, used by the
// query planner to order joins. Doubly-bound estimates are exact; singly-
// bound estimates read the per-key totals precomputed at New time, so every
// shape resolves in O(1) — the planner calls this in its inner loop.
func (st *Store) Cardinality(s, p, o rdf.Value) int {
	switch {
	case s != Wildcard && p != Wildcard && o != Wildcard:
		n := 0
		for _, ov := range st.spo[s][p] {
			if ov == o {
				n++
			}
		}
		return n
	case s != Wildcard && p != Wildcard:
		return len(st.spo[s][p])
	case p != Wildcard && o != Wildcard:
		return len(st.pos[p][o])
	case s != Wildcard && o != Wildcard:
		return len(st.osp[o][s])
	case s != Wildcard:
		return st.sTotal[s]
	case p != Wildcard:
		return st.pTotal[p]
	case o != Wildcard:
		return st.oTotal[o]
	}
	return st.size
}

// Contains reports whether the fully bound triple is in the store.
func (st *Store) Contains(s, p, o rdf.Value) bool {
	for _, ov := range st.spo[s][p] {
		if ov == o {
			return true
		}
	}
	return false
}
