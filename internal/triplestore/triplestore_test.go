package triplestore

import (
	"testing"

	"repro/internal/fixtures"
	"repro/internal/rdf"
)

func store(t *testing.T) (*Store, *rdf.Dataset, func(string) rdf.Value) {
	t.Helper()
	ds := fixtures.University()
	return New(ds), ds, func(s string) rdf.Value { return fixtures.MustID(ds, s) }
}

func collect(st *Store, s, p, o rdf.Value) []rdf.Triple {
	var out []rdf.Triple
	st.Scan(s, p, o, func(t rdf.Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

func TestScanAllPatternShapes(t *testing.T) {
	st, ds, id := store(t)
	w := Wildcard

	cases := []struct {
		name    string
		s, p, o rdf.Value
		want    int
	}{
		{"(?,?,?)", w, w, w, ds.Size()},
		{"(s,?,?)", id("patrick"), w, w, 3},
		{"(?,p,?)", w, id("undergradFrom"), w, 3},
		{"(?,?,o)", w, w, id("hpi"), 2},
		{"(s,p,?)", id("patrick"), id("rdf:type"), w, 1},
		{"(?,p,o)", w, id("rdf:type"), id("gradStudent"), 2},
		{"(s,?,o)", id("patrick"), w, id("csd"), 1},
		{"(s,p,o)", id("mike"), id("undergradFrom"), id("cmu"), 1},
		{"(s,p,o) miss", id("mike"), id("undergradFrom"), id("hpi"), 0},
	}
	for _, c := range cases {
		got := collect(st, c.s, c.p, c.o)
		if len(got) != c.want {
			t.Errorf("%s: %d matches, want %d", c.name, len(got), c.want)
		}
		for _, tr := range got {
			if c.s != w && tr.S != c.s || c.p != w && tr.P != c.p || c.o != w && tr.O != c.o {
				t.Errorf("%s: wrong triple %s", c.name, tr.String(ds.Dict))
			}
		}
		if card := st.Cardinality(c.s, c.p, c.o); card != c.want {
			t.Errorf("%s: Cardinality = %d, want %d", c.name, card, c.want)
		}
	}
}

func TestScanEarlyStop(t *testing.T) {
	st, _, _ := store(t)
	n := 0
	st.Scan(Wildcard, Wildcard, Wildcard, func(rdf.Triple) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("scan visited %d triples after early stop, want 3", n)
	}
}

func TestContains(t *testing.T) {
	st, _, id := store(t)
	if !st.Contains(id("patrick"), id("memberOf"), id("csd")) {
		t.Errorf("Contains misses an existing triple")
	}
	if st.Contains(id("patrick"), id("memberOf"), id("biod")) {
		t.Errorf("Contains reports a non-existing triple")
	}
}

func TestLenAndDict(t *testing.T) {
	st, ds, _ := store(t)
	if st.Len() != ds.Size() {
		t.Errorf("Len = %d, want %d", st.Len(), ds.Size())
	}
	if st.Dict() != ds.Dict {
		t.Errorf("store does not share the dataset dictionary")
	}
}
