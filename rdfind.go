// Package rdfind discovers pertinent conditional inclusion dependencies
// (CINDs) and exact association rules in RDF datasets. It is a from-scratch
// Go reproduction of "RDFind: Scalable Conditional Inclusion Dependency
// Discovery in RDF Datasets" (Kruse et al., SIGMOD 2016).
//
// A CIND is a statement (α, φ) ⊆ (β, φ′): the values that triple element α
// takes over the triples satisfying condition φ are contained in the values
// that element β takes over the triples satisfying φ′. RDFind returns the
// pertinent CINDs — those that are broad (their support, the number of
// distinct included values, reaches a user threshold) and minimal (not
// implied by another valid CIND) — and reports exact association rules in
// place of the CINDs they subsume.
//
// Quickstart:
//
//	ds, err := rdfind.ReadNTriplesFile("data.nt", 4)
//	if err != nil { ... }
//	result, stats := rdfind.Discover(ds, rdfind.Config{Support: 100, Workers: 4})
//	fmt.Print(result.Format(ds.Dict))
//	fmt.Printf("%d CINDs, %d ARs in %v\n", stats.Pertinent, stats.ARs, stats.Duration)
//
// The heavy lifting lives in internal packages mirroring the paper's
// architecture: internal/fcdetect (frequent conditions and association
// rules), internal/capture (capture groups), internal/extract (CIND
// extraction and minimality), all running on internal/dataflow, a small
// multi-worker dataflow engine standing in for Apache Flink.
package rdfind

import (
	"context"
	"io"
	"os"

	"repro/internal/cind"
	"repro/internal/core"
	"repro/internal/dataflow"
	"repro/internal/rdf"
	"repro/internal/source"
)

// Re-exported model types. See package repro/internal/cind for details.
type (
	// Condition is a unary (β=v) or binary (β=v1 ∧ γ=v2) predicate over a
	// triple's elements.
	Condition = cind.Condition
	// Capture pairs a projection attribute with a condition.
	Capture = cind.Capture
	// Inclusion is a CIND statement: dependent capture ⊆ referenced capture.
	Inclusion = cind.Inclusion
	// CIND is an inclusion with its support.
	CIND = cind.CIND
	// AR is an exact association rule with its support.
	AR = cind.AR
	// Result is a discovery result: pertinent CINDs plus association rules.
	Result = cind.Result

	// Dataset is a dictionary-encoded set of RDF triples.
	Dataset = rdf.Dataset
	// Triple is one dictionary-encoded RDF statement.
	Triple = rdf.Triple
	// Attr identifies a triple element (Subject, Predicate, Object).
	Attr = rdf.Attr
	// Value is a dictionary-encoded RDF term.
	Value = rdf.Value

	// Config parameterizes a discovery run.
	Config = core.Config
	// Stats reports what a run did.
	Stats = core.RunStats
	// Variant selects a pipeline strategy (the default is full RDFind).
	Variant = core.Variant

	// StageError reports the terminal failure of one dataflow stage: which
	// stage, which worker, on which attempt, and the recovered cause.
	StageError = dataflow.StageError
	// PanicError is a panic recovered from a worker goroutine.
	PanicError = dataflow.PanicError
	// FaultPlan is a deterministic fault-injection schedule for robustness
	// testing; attach one via Config.FaultPlan.
	FaultPlan = dataflow.FaultPlan
	// Fault schedules one injected fault at a stage/worker/occurrence site.
	Fault = dataflow.Fault
	// FaultSite identifies one worker execution of one stage.
	FaultSite = dataflow.Site

	// Cluster is the coordinator of a multi-process distributed run; attach
	// one via Config.Cluster.
	Cluster = dataflow.Cluster
	// ClusterConfig parameterizes StartCluster.
	ClusterConfig = dataflow.ClusterConfig
	// WorkerConn is one worker rank's connection to the coordinator; attach
	// one via Config.WorkerConn.
	WorkerConn = dataflow.WorkerConn
	// ProcFault schedules one injected process-level fault (kill, connection
	// drop, duplicated or delayed contribution) at a collective barrier.
	ProcFault = dataflow.ProcFault
	// ProcFaultKind selects the process-level fault kind.
	ProcFaultKind = dataflow.ProcFaultKind

	// SyntaxError describes one malformed N-Triples line (with line number).
	SyntaxError = rdf.SyntaxError

	// Source names a set of input files — N-Triples or Turtle, plain or
	// gzipped, direct paths or globs — decoded as a bounded stream in
	// canonical document order (the sorted, deduplicated expansion of its
	// inputs).
	Source = source.Spec
	// Partitioner decides which worker a streamed triple lands on. Placement
	// never changes the discovered result, only data movement.
	Partitioner = source.Partitioner
	// IngestStats reports what the streaming ingest layer did: per-rank
	// triple counts, placement shuffle bytes, and skipped lines.
	IngestStats = core.IngestStats
	// Malformed is one skipped input line, attributed to its file.
	Malformed = source.Malformed
	// InputError marks a failure to open or decode an input file — as
	// opposed to a failed discovery — for exit-code classification.
	InputError = source.InputError
)

// Source resolution sentinels (errors.Is).
var (
	// ErrLenientTurtle rejects lenient mode on Turtle input.
	ErrLenientTurtle = source.ErrLenientTurtle
	// ErrNoInput means the source's inputs matched no files at all.
	ErrNoInput = source.ErrNoInput
	// ErrBadFormat rejects an unknown Source.Format.
	ErrBadFormat = source.ErrBadFormat
)

// Source format names (Source.Format).
const (
	// FormatAuto resolves each file's format from its extension, after
	// stripping a .gz suffix (.ttl/.turtle → Turtle, anything else →
	// N-Triples).
	FormatAuto = source.FormatAuto
	// FormatNT forces N-Triples decoding for every input file.
	FormatNT = source.FormatNT
	// FormatTurtle forces Turtle decoding for every input file.
	FormatTurtle = source.FormatTurtle
)

// PartitionerByName maps a CLI partitioner name to its implementation: ""
// or "hash" (spread triples by hashing all three elements) or "subject"
// (keep each subject's triples on one worker).
func PartitionerByName(name string) (Partitioner, error) { return source.ByName(name) }

// DiscoverSource streams a source spec through discovery without ever
// materializing the input files in memory: the streaming counterpart of
// DiscoverContext, returning the global dictionary alongside the result. On
// a cluster, every worker rank streams only its own file assignment and a
// dictionary-merge collective produces the canonical dictionary — the
// coordinator never holds a triple — while the output stays byte-identical
// to a single-process run over the same inputs.
func DiscoverSource(ctx context.Context, src Source, cfg Config) (*Result, *rdf.Dictionary, *Stats, error) {
	return core.DiscoverSource(ctx, src, cfg)
}

// ReadSource folds a whole source spec into one in-memory Dataset in
// canonical document order — for callers that need the full dataset
// resident (query serving, spot checks) but still want streamed, gzip-aware,
// multi-file input handling. Lenient-mode skipped lines come back attributed
// to their files.
func ReadSource(src Source) (*Dataset, []Malformed, error) {
	resolved, err := src.Resolve()
	if err != nil {
		return nil, nil, err
	}
	return resolved.ReadDataset()
}

// Injected fault kinds.
const (
	// FaultTransient makes a worker fail with a retryable error.
	FaultTransient = dataflow.FaultTransient
	// FaultPanic makes a worker goroutine panic (recovered and retried).
	FaultPanic = dataflow.FaultPanic
)

// Injected process-level fault kinds (ProcFault.Kind).
const (
	// ProcKill terminates the worker process at the scheduled barrier.
	ProcKill = dataflow.ProcKill
	// ProcDisconnect drops the worker's connection (it reconnects).
	ProcDisconnect = dataflow.ProcDisconnect
	// ProcDuplicate sends the scheduled contribution twice.
	ProcDuplicate = dataflow.ProcDuplicate
	// ProcDelay stalls the scheduled contribution by ProcFault.Delay.
	ProcDelay = dataflow.ProcDelay
)

// StartCluster opens a coordinator for a multi-process run: it listens for
// worker connections, spawns every rank via cfg.Spawn, and supervises
// heartbeats, losses, and respawns. Attach the cluster via Config.Cluster.
func StartCluster(cfg ClusterConfig) (*Cluster, error) { return dataflow.StartCluster(cfg) }

// DialWorker connects a worker process to its coordinator and performs the
// rank handshake. Attach the connection via Config.WorkerConn; the job's
// worker count, partitioning seed, and fault schedule arrive with it.
func DialWorker(network, addr string, rank int) (*WorkerConn, error) {
	return dataflow.DialWorker(network, addr, rank)
}

// ErrProcessLoss marks errors caused by a worker process declared lost; it
// appears (wrapped in a StageError) when a loss becomes terminal.
var ErrProcessLoss = dataflow.ErrProcessLoss

// Triple element constants.
const (
	Subject   = rdf.Subject
	Predicate = rdf.Predicate
	Object    = rdf.Object
)

// Pipeline variants (§8.5, §8.6 of the paper).
const (
	// Standard is the full RDFind pipeline.
	Standard = core.Standard
	// DirectExtraction is RDFind-DE: no capture-support pruning, no load
	// balancing, exact candidate sets only.
	DirectExtraction = core.DirectExtraction
	// NoFrequentConditions is RDFind-NF: no frequent-condition pruning and
	// no association rules.
	NoFrequentConditions = core.NoFrequentConditions
	// MinimalFirst extracts minimal CINDs per arity class in multiple
	// passes instead of minimizing the broad set afterwards.
	MinimalFirst = core.MinimalFirst
)

// Discover runs CIND discovery over a dataset and returns the pertinent
// CINDs and association rules together with run statistics. It panics on any
// error (an exceeded Config.LoadLimit, an exhausted retry budget); use
// TryDiscover or DiscoverContext to observe errors instead.
func Discover(ds *Dataset, cfg Config) (*Result, *Stats) {
	return core.Discover(ds, cfg)
}

// TryDiscover is Discover with errors surfaced instead of panicking, along
// with partial statistics for the completed part of the run.
func TryDiscover(ds *Dataset, cfg Config) (*Result, *Stats, error) {
	return core.TryDiscover(ds, cfg)
}

// DiscoverContext runs discovery under a cancellation context: cancelling
// (or timing out) ctx aborts the pipeline promptly between stages with an
// error wrapping ctx.Err() and a partial-stats report. Worker panics are
// recovered into StageErrors, and transient faults are retried per
// Config.MaxStageAttempts before surfacing.
func DiscoverContext(ctx context.Context, ds *Dataset, cfg Config) (*Result, *Stats, error) {
	return core.DiscoverContext(ctx, ds, cfg)
}

// NewFaultPlan builds a deterministic fault-injection schedule for
// Config.FaultPlan; an empty plan injects nothing but traces execution.
func NewFaultPlan(faults ...Fault) *FaultPlan { return dataflow.NewFaultPlan(faults...) }

// RandomFaultPlan samples n faults from a traced fault-free run, seeded for
// reproducibility. See dataflow.RandomFaultPlan.
func RandomFaultPlan(seed int64, sites []FaultSite, n int) *FaultPlan {
	return dataflow.RandomFaultPlan(seed, sites, n)
}

// IsTransient reports whether an error (anywhere in its chain) is marked as
// a transient, retryable fault.
func IsTransient(err error) bool { return dataflow.IsTransient(err) }

// NewDataset returns an empty dataset for programmatic construction.
func NewDataset() *Dataset { return rdf.NewDataset() }

// ReadNTriples parses an N-Triples document. Malformed lines abort parsing
// with a *SyntaxError naming the line.
func ReadNTriples(r io.Reader) (*Dataset, error) { return rdf.ReadNTriples(r) }

// ReadNTriplesLenient parses an N-Triples document, skipping malformed lines
// (reported as *SyntaxErrors, capped at maxErrors; non-positive selects
// rdf.DefaultMaxParseErrors) instead of aborting on the first.
func ReadNTriplesLenient(r io.Reader, maxErrors int) (*Dataset, []*SyntaxError, error) {
	return rdf.ReadNTriplesLenient(r, maxErrors)
}

// ParseNTriples parses an in-memory N-Triples document with the given number
// of parallel ingest shards. The result — triple order and dictionary ID
// assignment included — is identical to ReadNTriples over the same bytes.
func ParseNTriples(data []byte, shards int) (*Dataset, error) {
	return rdf.ParseNTriples(data, shards)
}

// ParseNTriplesLenient is ParseNTriples in lenient mode, skipping up to
// maxErrors malformed lines.
func ParseNTriplesLenient(data []byte, shards, maxErrors int) (*Dataset, []*SyntaxError, error) {
	return rdf.ParseNTriplesLenient(data, shards, maxErrors)
}

// ReadNTriplesFile parses an N-Triples file from disk using the given number
// of parallel ingest shards (values below 1 select 1; the parallel kernel at
// one shard already beats the sequential reader through its allocation-lean
// scanning).
func ReadNTriplesFile(path string, shards int) (*Dataset, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return rdf.ParseNTriples(data, shards)
}

// ReadNTriplesFileLenient parses an N-Triples file from disk in lenient
// mode, skipping up to maxErrors malformed lines, with the given number of
// parallel ingest shards.
func ReadNTriplesFileLenient(path string, shards, maxErrors int) (*Dataset, []*SyntaxError, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return rdf.ParseNTriplesLenient(data, shards, maxErrors)
}

// ReadTurtle parses a Turtle document (@prefix/@base directives, prefixed
// names, the "a" keyword, ";" predicate lists and "," object lists, typed and
// tagged literals). Terms are stored in their N-Triples surface form, so a
// dataset read from Turtle is interchangeable with one read from the
// equivalent N-Triples: same triples, same dictionary.
func ReadTurtle(r io.Reader) (*Dataset, error) { return rdf.ReadTurtle(r) }

// WriteNTriples serializes a dataset as N-Triples.
func WriteNTriples(w io.Writer, ds *Dataset) error { return rdf.WriteNTriples(w, ds) }

// Unary builds the condition a = v over dictionary-encoded values.
func Unary(a Attr, v rdf.Value) Condition { return cind.Unary(a, v) }

// Binary builds the condition a1 = v1 ∧ a2 = v2.
func Binary(a1 Attr, v1 rdf.Value, a2 Attr, v2 rdf.Value) Condition {
	return cind.Binary(a1, v1, a2, v2)
}

// MarshalResultJSON serializes a result with surface-form terms, so the file
// is self-contained and machine-readable.
func MarshalResultJSON(res *Result, dict *rdf.Dictionary) ([]byte, error) {
	return cind.MarshalJSON(res, dict)
}

// UnmarshalResultJSON reads a result serialized by MarshalResultJSON,
// interning its terms into the given dictionary.
func UnmarshalResultJSON(data []byte, dict *rdf.Dictionary) (*Result, error) {
	return cind.UnmarshalJSON(data, dict)
}

// ParseInclusion reads a CIND statement in the textual form produced by
// Inclusion.Format, e.g. "(s, p=memberOf) ⊆ (s, p=rdf:type)" ("<=" and "&&"
// are accepted for "⊆" and "∧").
func ParseInclusion(s string, dict *rdf.Dictionary) (Inclusion, error) {
	return cind.ParseInclusion(s, dict)
}

// Holds checks an inclusion directly against a dataset by materializing both
// capture interpretations — useful for spot-checking results.
func Holds(ds *Dataset, inc Inclusion) bool { return cind.Holds(ds, inc) }

// Support computes |I(T, c)|, the support a CIND with dependent capture c
// would have on the dataset.
func Support(ds *Dataset, c Capture) int { return cind.SupportOf(ds, c) }
