package rdfind

import (
	"bytes"
	"strings"
	"testing"
)

// table1NT is the paper's Table 1 instance as an N-Triples document.
const table1NT = `<patrick> <rdf:type> <gradStudent> .
<mike> <rdf:type> <gradStudent> .
<john> <rdf:type> <professor> .
<patrick> <memberOf> <csd> .
<mike> <memberOf> <biod> .
<patrick> <undergradFrom> <hpi> .
<tim> <undergradFrom> <hpi> .
<mike> <undergradFrom> <cmu> .
`

func TestPublicAPIEndToEnd(t *testing.T) {
	ds, err := ReadNTriples(strings.NewReader(table1NT))
	if err != nil {
		t.Fatal(err)
	}
	res, stats := Discover(ds, Config{Support: 2, Workers: 2})
	if stats.Triples != 8 {
		t.Errorf("stats.Triples = %d", stats.Triples)
	}
	if len(res.CINDs) == 0 || len(res.ARs) == 0 {
		t.Fatalf("no results: %d CINDs, %d ARs", len(res.CINDs), len(res.ARs))
	}
	for _, c := range res.CINDs {
		if !Holds(ds, c.Inclusion) {
			t.Errorf("invalid CIND: %s", c.Format(ds.Dict))
		}
		if Support(ds, c.Dep) != c.Support {
			t.Errorf("support mismatch for %s", c.Format(ds.Dict))
		}
	}
	// Example 3's CIND in its AR-quotient form must be present.
	grad, _ := ds.Dict.Lookup("<gradStudent>")
	under, _ := ds.Dict.Lookup("<undergradFrom>")
	want := Inclusion{
		Dep: Capture{Proj: Subject, Cond: Unary(Object, grad)},
		Ref: Capture{Proj: Subject, Cond: Unary(Predicate, under)},
	}
	found := false
	for _, c := range res.CINDs {
		if c.Inclusion == want {
			found = true
		}
	}
	if !found {
		t.Errorf("Example 3 CIND missing from:\n%s", res.Format(ds.Dict))
	}
}

func TestPublicAPIRoundTrip(t *testing.T) {
	ds := NewDataset()
	ds.Add("<a>", "<b>", "<c>")
	var buf bytes.Buffer
	if err := WriteNTriples(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadNTriples(&buf)
	if err != nil || back.Size() != 1 {
		t.Errorf("round trip failed: %v, %d triples", err, back.Size())
	}
}

func TestPublicAPIBinaryCondition(t *testing.T) {
	c := Binary(Object, 5, Subject, 3)
	if !c.IsBinary() || c.A1 != Subject {
		t.Errorf("Binary not normalized: %+v", c)
	}
}

func TestVariantsExposed(t *testing.T) {
	for _, v := range []Variant{Standard, DirectExtraction, NoFrequentConditions, MinimalFirst} {
		if v.String() == "unknown" {
			t.Errorf("variant %d unnamed", v)
		}
	}
}
